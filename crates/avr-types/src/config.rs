//! System configuration — Table 1 of the paper, plus AVR knobs.

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Associativity.
    pub ways: usize,
    /// Access latency in CPU cycles.
    pub latency: u64,
}

impl CacheGeometry {
    /// Number of sets (capacity / 64 B / ways).
    pub fn sets(&self) -> usize {
        self.capacity / crate::addr::CL_BYTES / self.ways
    }

    /// log2(sets) — the number of index bits `n` in the paper's Fig. 6.
    pub fn index_bits(&self) -> u32 {
        let s = self.sets();
        assert!(s.is_power_of_two(), "set count must be a power of two, got {s}");
        s.trailing_zeros()
    }
}

/// DRAM timing/geometry parameters (DDR4-1600-class defaults).
///
/// All timings are expressed in *memory-clock* cycles; `cpu_cycles_per_mem_clk`
/// converts to CPU cycles (3.2 GHz CPU / 800 MHz DDR4-1600 clock = 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramParams {
    pub channels: usize,
    pub banks_per_channel: usize,
    pub rows_per_bank: usize,
    /// Row-buffer (page) size in bytes.
    pub row_bytes: usize,
    /// CAS latency.
    pub cl: u64,
    /// RAS-to-CAS delay.
    pub trcd: u64,
    /// Row precharge.
    pub trp: u64,
    /// Minimum row-open time.
    pub tras: u64,
    /// Data burst duration for one 64 B line (BL8 on a 64-bit bus = 4 clocks).
    pub burst: u64,
    /// Refresh interval (0 disables refresh modelling).
    pub trefi: u64,
    /// Refresh duration.
    pub trfc: u64,
    /// CPU cycles per memory clock.
    pub cpu_cycles_per_mem_clk: u64,
}

impl Default for DramParams {
    fn default() -> Self {
        // DDR4-1600: tCK = 1.25 ns, CL=tRCD=tRP=11, tRAS=28, tREFI=7.8 us,
        // tRFC=280 ns. CPU at 3.2 GHz -> 4 CPU cycles per memory clock.
        DramParams {
            channels: 2,
            banks_per_channel: 16,
            rows_per_bank: 1 << 15,
            row_bytes: 2048,
            cl: 11,
            trcd: 11,
            trp: 11,
            tras: 28,
            burst: 4,
            trefi: 6240,
            trfc: 224,
            cpu_cycles_per_mem_clk: 4,
        }
    }
}

/// AVR-specific architectural knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AvrParams {
    /// Per-value relative error threshold T1 (fraction, e.g. 0.02 = 2 %).
    pub t1: f64,
    /// Block-average relative error threshold T2; the paper uses T1 = 2*T2.
    pub t2: f64,
    /// PFE threshold: prefetch remaining DBUF lines into the LLC when at
    /// least this fraction of the block's lines were explicitly requested.
    pub pfe_threshold: f64,
    /// On-chip CMT cache capacity in pages (misses cost metadata traffic).
    pub cmt_cache_pages: usize,
    /// Maximum compressed size in cachelines (paper: 8, i.e. 2:1 worst case).
    pub max_compressed_lines: usize,
    /// Ablation: park dirty lines in the block's free space (§3.1 lazy
    /// evictions) instead of recompacting immediately.
    pub enable_lazy: bool,
    /// Ablation: keep the decompressed block in the DBUF and serve
    /// subsequent requests from it (§3.3).
    pub enable_dbuf: bool,
    /// Ablation: back off from recompressing blocks that keep failing
    /// (§3.2 #failed/#skipped history).
    pub enable_skip_history: bool,
    /// Ablation: co-locate compressed blocks in the LLC alongside
    /// uncompressed lines (§3.4) rather than keeping them memory-only.
    pub store_cms_in_llc: bool,
}

impl Default for AvrParams {
    fn default() -> Self {
        AvrParams {
            t1: 0.02,
            t2: 0.01,
            pfe_threshold: 0.5,
            cmt_cache_pages: 1024,
            max_compressed_lines: 8,
            enable_lazy: true,
            enable_dbuf: true,
            enable_skip_history: true,
            store_cms_in_llc: true,
        }
    }
}

/// Which device error-model backend serves main memory (the `DramBackend`
/// axis, ROADMAP item 4). All backends share the DDR4 timing engine; they
/// differ in whether — and how — stored bits decay.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Bit-exact storage: today's behaviour, no fault injection.
    Exact,
    /// DRAM refreshed at a multiple of nominal tREFI: approximable lines
    /// suffer retention-failure bit flips when read from the device.
    RelaxedDram,
    /// Non-volatile MRAM written with reduced write margins: approximable
    /// lines suffer asymmetric 0→1 / 1→0 write errors, and refresh
    /// disappears entirely.
    ApproxMram,
}

impl BackendKind {
    /// The three backends in bench/sweep order.
    pub const ALL: [BackendKind; 3] =
        [BackendKind::Exact, BackendKind::RelaxedDram, BackendKind::ApproxMram];

    /// Label used in bench output and the `AVR_BACKEND` env knob.
    pub fn label(&self) -> &'static str {
        match self {
            BackendKind::Exact => "exact",
            BackendKind::RelaxedDram => "relaxed",
            BackendKind::ApproxMram => "mram",
        }
    }

    /// Inverse of [`BackendKind::label`] (the wire/CLI spelling).
    pub fn from_label(label: &str) -> Option<BackendKind> {
        BackendKind::ALL.into_iter().find(|k| k.label() == label)
    }
}

/// Device error-model parameters (fault rates, seeding, and the graceful-
/// degradation budget). Only consulted by the fault-injecting backends;
/// `ExactDram` ignores everything but `backend`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ErrorModelParams {
    /// Pinned backend. `None` resolves the `AVR_BACKEND` environment knob
    /// (`exact` when unset); `Some` always wins over the environment.
    pub backend: Option<BackendKind>,
    /// Root seed of every per-(region, block, access-count) fault stream.
    pub seed: u64,
    /// Per-bit retention-failure probability per *nominal refresh interval
    /// of added retention time* (RelaxedDram). The effective per-read flip
    /// rate is `retention_fail_per_bit * (refresh_multiplier - 1)`.
    pub retention_fail_per_bit: f64,
    /// tREFI multiplier for RelaxedDram: 1 = nominal refresh (no failures,
    /// full refresh energy), larger values trade retention errors for
    /// fewer refreshes.
    pub refresh_multiplier: u64,
    /// MRAM per-bit 0→1 write-error rate at margin level 0.
    pub mram_p01: f64,
    /// MRAM per-bit 1→0 write-error rate at margin level 0.
    pub mram_p10: f64,
    /// Number of per-region write-margin levels; a region at level `k` has
    /// its error rates scaled by `2^k` (the level is chosen
    /// deterministically from the region base address).
    pub mram_margin_levels: u32,
    /// Model ECC scrubbing of critical (non-approximable) lines: they are
    /// always served exactly either way, but scrubs are counted and cost
    /// energy when enabled.
    pub ecc_protect_critical: bool,
    /// Graceful-degradation budget: how many implausible reconstructions
    /// may be re-served exactly (a timed refetch/rewrite) before the system
    /// starts committing sanitized degraded data instead.
    pub retry_budget: u64,
}

impl Default for ErrorModelParams {
    fn default() -> Self {
        ErrorModelParams {
            backend: None,
            seed: 0x5EED_AB1E,
            retention_fail_per_bit: 5e-8,
            refresh_multiplier: 4,
            mram_p01: 1e-7,
            mram_p10: 5e-8,
            mram_margin_levels: 3,
            ecc_protect_critical: true,
            retry_budget: 64,
        }
    }
}

/// Memoization-design parameters (the `MemoIn`/`MemoOut` designs). Only
/// consulted by those two designs; every other design ignores this block.
///
/// All thresholds are deterministic pure functions of line *content* — no
/// RNG anywhere — so memo behaviour is bit-identical at any `SimPool`
/// width and across per-word/batched/SIMD walks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemoParams {
    /// `MemoIn` reconstruction-table capacity in cacheline slots. Slots
    /// are allocated once per run (at the first approximable `malloc`) and
    /// filled first-come-first-served; the table never evicts, so a line's
    /// table mapping stays valid for the whole run.
    pub table_slots: usize,
    /// `MemoIn` per-value relative-error match threshold: a candidate line
    /// matches a table slot when *every* value is within this relative
    /// error of the slot's value (and the line means agree to the same
    /// threshold). Plays the role of AVR's T1.
    pub match_threshold: f64,
    /// `MemoOut` sliding-window length in writebacks (capped at 8).
    pub window: usize,
    /// `MemoOut` relative-standard-deviation gate: once a line's window is
    /// full and the RSD of its value signatures is at or under this
    /// threshold, the dirty writeback is elided and the last committed
    /// content re-served.
    pub rsd_threshold: f64,
    /// `MemoOut` safety valve: after this many consecutive elisions the
    /// next writeback commits exactly regardless of the RSD gate, bounding
    /// how long a drifting-but-stable-looking line can go uncommitted.
    pub max_consecutive_elides: u32,
}

impl Default for MemoParams {
    fn default() -> Self {
        MemoParams {
            table_slots: 256,
            match_threshold: 0.04,
            window: 4,
            rsd_threshold: 0.04,
            max_consecutive_elides: 3,
        }
    }
}

/// Which memory layout a workload's record data is instantiated in (the
/// layout-transform axis, ROADMAP item 3). Layouts change *placement*, not
/// math: an exact run produces bit-identical output in every variant, while
/// approximating designs see different per-block value mixes — the
/// granularity-gap effect the Akiyama papers describe.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum LayoutKind {
    /// Structure-of-arrays: each field is a contiguous plane. This is the
    /// historical layout of every in-tree workload and the default.
    #[default]
    Soa,
    /// Array-of-structures: whole records are interleaved word-by-word, so
    /// a 1 KB block mixes every field (and criticality class) of ~records
    /// worth of data.
    Aos,
    /// Hot/cold criticality partitioning: approximable fields are
    /// interleaved together in an approximate region, critical fields in a
    /// separate precise region (the data-partitioning transform of
    /// arXiv:2004.01637).
    Partitioned,
}

impl LayoutKind {
    /// The three layouts in bench/sweep order.
    pub const ALL: [LayoutKind; 3] = [LayoutKind::Soa, LayoutKind::Aos, LayoutKind::Partitioned];

    /// Label used in bench output.
    pub fn label(&self) -> &'static str {
        match self {
            LayoutKind::Soa => "soa",
            LayoutKind::Aos => "aos",
            LayoutKind::Partitioned => "partitioned",
        }
    }

    /// Inverse of [`LayoutKind::label`] (the wire/CLI spelling).
    pub fn from_label(label: &str) -> Option<LayoutKind> {
        LayoutKind::ALL.into_iter().find(|k| k.label() == label)
    }
}

/// Which evaluated design a `System` implements: the paper's five plus the
/// two HPAC-style memoization designs (Tziantzioulis et al., IEEE Micro
/// 2018) recast as memory-system techniques.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DesignKind {
    /// Unmodified system, no compression.
    Baseline,
    /// AVR hardware present but no data marked approximable.
    ZeroAvr,
    /// fp32 -> fp16 truncation of approximable data (2:1).
    Truncate,
    /// Doppelganger-style approximate-dedup LLC (4x tags).
    Doppelganger,
    /// The full AVR architecture.
    Avr,
    /// Input memoization: a content-fingerprint table of whole cachelines;
    /// within-threshold matches are served from the on-chip reconstruction
    /// table instead of DRAM (exact fallback on miss).
    MemoIn,
    /// Temporal output memoization: per-line sliding-window prediction —
    /// a dirty writeback whose value signature is temporally stable
    /// (window RSD under threshold) is elided and the last committed
    /// content re-served; unstable lines commit exactly.
    MemoOut,
}

impl DesignKind {
    pub const ALL: [DesignKind; 7] = [
        DesignKind::Baseline,
        DesignKind::Doppelganger,
        DesignKind::Truncate,
        DesignKind::ZeroAvr,
        DesignKind::Avr,
        DesignKind::MemoIn,
        DesignKind::MemoOut,
    ];

    /// Label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            DesignKind::Baseline => "baseline",
            DesignKind::ZeroAvr => "ZeroAVR",
            DesignKind::Truncate => "truncate",
            DesignKind::Doppelganger => "dganger",
            DesignKind::Avr => "AVR",
            DesignKind::MemoIn => "memoin",
            DesignKind::MemoOut => "memoout",
        }
    }

    /// Inverse of [`DesignKind::label`] (the wire/CLI spelling).
    pub fn from_label(label: &str) -> Option<DesignKind> {
        DesignKind::ALL.into_iter().find(|k| k.label() == label)
    }
}

/// Which problem size a workload instantiates (moved here from the
/// workload runner when the sweep-server wire format needed to name it;
/// `avr_workloads` re-exports it, so workload code is unaffected).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BenchScale {
    /// Tiny: unit/integration tests (sub-second per design).
    Tiny,
    /// Bench: the figure-regeneration scale (footprint : LLC ratios match
    /// the paper's Table 2 against the per-core-scaled hierarchy).
    Bench,
}

impl BenchScale {
    /// Both scales, tiny first.
    pub const ALL: [BenchScale; 2] = [BenchScale::Tiny, BenchScale::Bench];

    /// Label used on the wire and in bench output.
    pub fn label(&self) -> &'static str {
        match self {
            BenchScale::Tiny => "tiny",
            BenchScale::Bench => "bench",
        }
    }

    /// Inverse of [`BenchScale::label`] (the wire/CLI spelling).
    pub fn from_label(label: &str) -> Option<BenchScale> {
        BenchScale::ALL.into_iter().find(|k| k.label() == label)
    }
}

/// Full system configuration (Table 1).
#[derive(Clone, Debug, PartialEq)]
pub struct SystemConfig {
    /// Number of simulated cores.
    pub cores: usize,
    /// Core clock in Hz (3.2 GHz).
    pub clock_hz: f64,
    /// Issue/commit width.
    pub issue_width: u64,
    /// Reorder-buffer size (bounds miss overlap in the interval model).
    pub rob_size: u64,
    /// Miss-status registers per core (caps memory-level parallelism).
    pub mshrs: u64,
    pub l1: CacheGeometry,
    pub l2: CacheGeometry,
    pub llc: CacheGeometry,
    pub dram: DramParams,
    pub avr: AvrParams,
    /// Device error-model backend selection and fault rates.
    pub error_model: ErrorModelParams,
    /// Memoization-design knobs (`MemoIn`/`MemoOut` only).
    pub memo: MemoParams,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            cores: 8,
            clock_hz: 3.2e9,
            issue_width: 4,
            rob_size: 224,
            mshrs: 8,
            l1: CacheGeometry { capacity: 64 << 10, ways: 4, latency: 1 },
            l2: CacheGeometry { capacity: 256 << 10, ways: 8, latency: 8 },
            llc: CacheGeometry { capacity: 8 << 20, ways: 16, latency: 15 },
            dram: DramParams::default(),
            avr: AvrParams::default(),
            error_model: ErrorModelParams::default(),
            memo: MemoParams::default(),
        }
    }
}

impl SystemConfig {
    /// Table 1 verbatim.
    pub fn paper() -> Self {
        Self::default()
    }

    /// One core with its per-core share of the shared LLC (8 MB / 8 cores),
    /// preserving the footprint:capacity ratios that drive the paper's
    /// results while keeping simulations laptop-fast. Used by the figure
    /// benches; see DESIGN.md §3.
    #[allow(clippy::field_reassign_with_default)] // builder-style tweaks read clearer
    pub fn per_core_scaled() -> Self {
        let mut c = Self::default();
        c.cores = 1;
        c.llc = CacheGeometry { capacity: 1 << 20, ways: 16, latency: 15 };
        // One core also only gets its share of the memory system: one
        // channel at half the per-channel burst rate approximates 1/4 of
        // the 2-channel DDR4-1600 system (8 cores competing for 2
        // channels). Latency parameters are unchanged.
        c.dram.channels = 1;
        c.dram.burst = 8;
        c
    }

    /// This configuration pinned to a specific device backend (wins over
    /// the `AVR_BACKEND` environment knob).
    pub fn with_backend(mut self, kind: BackendKind) -> Self {
        self.error_model.backend = Some(kind);
        self
    }

    /// A tiny configuration for unit/integration tests.
    #[allow(clippy::field_reassign_with_default)]
    pub fn tiny() -> Self {
        let mut c = Self::default();
        c.cores = 1;
        c.l1 = CacheGeometry { capacity: 4 << 10, ways: 4, latency: 1 };
        c.l2 = CacheGeometry { capacity: 16 << 10, ways: 8, latency: 8 };
        c.llc = CacheGeometry { capacity: 64 << 10, ways: 16, latency: 15 };
        c.avr.cmt_cache_pages = 64;
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_geometry() {
        let c = SystemConfig::paper();
        assert_eq!(c.cores, 8);
        assert_eq!(c.l1.sets(), 256);
        assert_eq!(c.l2.sets(), 512);
        assert_eq!(c.llc.sets(), 8192);
        assert_eq!(c.llc.index_bits(), 13);
    }

    #[test]
    fn scaled_keeps_ratio() {
        let paper = SystemConfig::paper();
        let scaled = SystemConfig::per_core_scaled();
        let per_core_share = paper.llc.capacity / paper.cores;
        assert_eq!(scaled.llc.capacity, per_core_share);
        assert_eq!(scaled.cores, 1);
    }

    #[test]
    fn design_labels_match_paper() {
        assert_eq!(DesignKind::Avr.label(), "AVR");
        assert_eq!(DesignKind::Doppelganger.label(), "dganger");
        assert_eq!(DesignKind::ALL.len(), 7);
        // The memoization designs ride the same label/from_label contract.
        assert_eq!(DesignKind::MemoIn.label(), "memoin");
        assert_eq!(DesignKind::MemoOut.label(), "memoout");
        for k in DesignKind::ALL {
            assert_eq!(DesignKind::from_label(k.label()), Some(k));
        }
        assert_eq!(DesignKind::from_label("memofoo"), None);
    }

    #[test]
    fn memo_defaults_are_sane() {
        let m = MemoParams::default();
        assert!(m.table_slots > 0 && m.table_slots < u16::MAX as usize);
        assert!(m.window >= 2 && m.window <= 8);
        assert!(m.match_threshold > 0.0 && m.rsd_threshold > 0.0);
    }

    #[test]
    fn backend_labels_and_pinning() {
        assert_eq!(BackendKind::ALL.map(|b| b.label()), ["exact", "relaxed", "mram"]);
        let c = SystemConfig::tiny();
        assert_eq!(c.error_model.backend, None, "default resolves the env knob");
        let pinned = c.with_backend(BackendKind::ApproxMram);
        assert_eq!(pinned.error_model.backend, Some(BackendKind::ApproxMram));
    }

    #[test]
    fn dram_defaults_are_ddr4_1600_class() {
        let d = DramParams::default();
        assert_eq!(d.channels, 2);
        assert_eq!(d.cpu_cycles_per_mem_clk, 4);
        assert!(d.tras >= d.trcd + d.burst);
    }
}
