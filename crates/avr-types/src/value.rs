//! Value representations handled by the AVR codec.
//!
//! The paper's implementation supports standard 32-bit floating point and
//! fixed point. The `method` field of a CMT entry (2 bits) encodes the
//! datatype together with the downsampling layout; see `avr-compress`.

use crate::addr::{BLOCK_BYTES, CL_BYTES};

/// 32-bit values per cacheline.
pub const VALUES_PER_LINE: usize = CL_BYTES / 4;
/// 32-bit values per memory block (16 lines x 16 values).
pub const VALUES_PER_BLOCK: usize = BLOCK_BYTES / 4;

/// Datatype of the values in an approximable region.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Default)]
pub enum DataType {
    /// IEEE-754 binary32.
    #[default]
    F32,
    /// 32-bit fixed point (Q16.16 by convention in this implementation).
    Fixed32,
}

impl DataType {
    /// Decode a raw `u32` as this datatype, into an `f64` for error math.
    #[inline]
    pub fn decode(self, raw: u32) -> f64 {
        match self {
            DataType::F32 => f32::from_bits(raw) as f64,
            DataType::Fixed32 => (raw as i32) as f64 / 65536.0,
        }
    }

    /// Encode an `f64` into this datatype's raw representation (saturating
    /// for fixed point).
    #[inline]
    pub fn encode(self, v: f64) -> u32 {
        match self {
            DataType::F32 => (v as f32).to_bits(),
            DataType::Fixed32 => {
                let scaled = (v * 65536.0).round();
                let clamped = scaled.clamp(i32::MIN as f64, i32::MAX as f64);
                (clamped as i32) as u32
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        assert_eq!(VALUES_PER_LINE, 16);
        assert_eq!(VALUES_PER_BLOCK, 256);
    }

    #[test]
    fn f32_round_trip() {
        for v in [0.0, 1.5, -3.25e7, f32::MIN_POSITIVE as f64] {
            let raw = DataType::F32.encode(v);
            assert_eq!(DataType::F32.decode(raw), v as f32 as f64);
        }
    }

    #[test]
    fn fixed_round_trip_within_half_ulp() {
        for v in [0.0, 1.0, -1.0, 123.456, -32767.9] {
            let raw = DataType::Fixed32.encode(v);
            let back = DataType::Fixed32.decode(raw);
            assert!((back - v).abs() <= 0.5 / 65536.0 + 1e-12, "{v} -> {back}");
        }
    }

    #[test]
    fn fixed_saturates() {
        let hi = DataType::Fixed32.encode(1e12);
        assert_eq!(hi, i32::MAX as u32);
        let lo = DataType::Fixed32.encode(-1e12);
        assert_eq!(lo, i32::MIN as u32);
    }
}
