//! A 1 KB AVR memory block: 16 cachelines / 256 values.

use crate::line::CacheLine;
use crate::value::{DataType, VALUES_PER_BLOCK, VALUES_PER_LINE};
use crate::LINES_PER_BLOCK;

/// The uncompressed contents of one AVR memory block.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BlockData {
    pub words: [u32; VALUES_PER_BLOCK],
}

impl Default for BlockData {
    fn default() -> Self {
        BlockData { words: [0; VALUES_PER_BLOCK] }
    }
}

impl BlockData {
    /// Assemble a block from its 16 cachelines.
    pub fn from_lines(lines: &[CacheLine; LINES_PER_BLOCK]) -> Self {
        let mut words = [0u32; VALUES_PER_BLOCK];
        for (i, line) in lines.iter().enumerate() {
            words[i * VALUES_PER_LINE..(i + 1) * VALUES_PER_LINE].copy_from_slice(&line.words);
        }
        BlockData { words }
    }

    /// Split the block back into its 16 cachelines.
    pub fn to_lines(&self) -> [CacheLine; LINES_PER_BLOCK] {
        let mut out = [CacheLine::ZERO; LINES_PER_BLOCK];
        for (i, line) in out.iter_mut().enumerate() {
            line.words.copy_from_slice(&self.words[i * VALUES_PER_LINE..(i + 1) * VALUES_PER_LINE]);
        }
        out
    }

    /// The `i`-th cacheline of the block.
    pub fn line(&self, i: usize) -> CacheLine {
        let mut l = CacheLine::ZERO;
        l.words.copy_from_slice(&self.words[i * VALUES_PER_LINE..(i + 1) * VALUES_PER_LINE]);
        l
    }

    /// Overwrite the `i`-th cacheline of the block.
    pub fn set_line(&mut self, i: usize, line: &CacheLine) {
        self.words[i * VALUES_PER_LINE..(i + 1) * VALUES_PER_LINE].copy_from_slice(&line.words);
    }

    /// Decode all values through `dt` into `f64`s (for error measurement).
    pub fn decode(&self, dt: DataType) -> Vec<f64> {
        self.words.iter().map(|&w| dt.decode(w)).collect()
    }

    /// Build a block by encoding `f64` values through `dt`.
    pub fn encode(vals: &[f64], dt: DataType) -> Self {
        assert_eq!(vals.len(), VALUES_PER_BLOCK);
        let mut words = [0u32; VALUES_PER_BLOCK];
        for (w, v) in words.iter_mut().zip(vals) {
            *w = dt.encode(*v);
        }
        BlockData { words }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> BlockData {
        let mut b = BlockData::default();
        for (i, w) in b.words.iter_mut().enumerate() {
            *w = (i as f32 * 0.5).to_bits();
        }
        b
    }

    #[test]
    fn lines_round_trip() {
        let b = ramp();
        let lines = b.to_lines();
        assert_eq!(BlockData::from_lines(&lines), b);
    }

    #[test]
    fn set_line_replaces_exactly_sixteen_words() {
        let mut b = ramp();
        let orig = b.clone();
        let new_line = CacheLine { words: [0xDEAD_BEEF; VALUES_PER_LINE] };
        b.set_line(7, &new_line);
        for i in 0..VALUES_PER_BLOCK {
            if (112..128).contains(&i) {
                assert_eq!(b.words[i], 0xDEAD_BEEF);
            } else {
                assert_eq!(b.words[i], orig.words[i]);
            }
        }
        assert_eq!(b.line(7), new_line);
    }

    #[test]
    fn encode_decode_f32() {
        let vals: Vec<f64> = (0..VALUES_PER_BLOCK).map(|i| i as f64 * 0.25).collect();
        let b = BlockData::encode(&vals, DataType::F32);
        let back = b.decode(DataType::F32);
        for (a, b) in vals.iter().zip(&back) {
            assert_eq!(*a as f32, *b as f32);
        }
    }
}
