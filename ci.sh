#!/usr/bin/env bash
# CI gate, split into the stages .github/workflows/ci.yml runs as a matrix
# (so lint failures report in minutes, not after a full release build):
#
#   ./ci.sh               full gate: lint + debug tests + release tests +
#                         scalar-fallback tests + perf
#   ./ci.sh lint          rustfmt + clippy -D warnings + cargo doc --no-deps
#                         (rustdoc warnings denied: the redesigned public
#                         bulk Vm API stays documented)
#   ./ci.sh test-debug    debug build + full test suite
#   ./ci.sh test-release  release build + full test suite
#   ./ci.sh test-scalar   release test suite with AVR_NO_SIMD=1 — forces
#                         the portable scalar codec arm so the non-dispatch
#                         path can never rot
#   ./ci.sh test-perword  release test suite with AVR_NO_BATCHED_WALK=1 —
#                         forces the per-word timed walk (the batched span
#                         walk's reference semantics) so the equivalence
#                         oracle keeps running against live code
#   ./ci.sh test-relaxed  release test suite with AVR_BACKEND=relaxed —
#                         every default-constructed System runs on the
#                         fault-injecting relaxed-refresh DRAM backend at
#                         its default rates, so the graceful-degradation
#                         and criticality-protection paths can never rot
#   ./ci.sh test-pooled   release test suite with AVR_THREADS=4 — every
#                         default-width SimPool (grid sweeps, Table 4
#                         summaries, figure smoke) runs four workers wide,
#                         so the chunked claiming / weighted scheduling /
#                         golden-memoization machinery is exercised under
#                         real concurrency by the whole suite, not only by
#                         the tests that construct wide pools themselves
#   ./ci.sh perf          bench smoke: bench_e2e --smoke gated against the
#                         committed BENCH_PR8.json + codec kernel smoke
#   ./ci.sh quick         fast local pre-commit check (lint + release tests)
#
# Every stage prints its wall time on completion (run_stage), so a slow CI
# leg is attributable to a stage instead of to "the job".
#
# Everything builds with the repo's .cargo/config.toml (host-native
# codegen) and the channel pinned by rust-toolchain.toml; see
# PERFORMANCE.md.

set -euo pipefail
cd "$(dirname "$0")"

# Run one named stage function and report its wall time, pass or fail.
run_stage() {
    local stage="$1" fn="$2" t0 t1 rc=0
    t0=$SECONDS
    "$fn" || rc=$?
    t1=$SECONDS
    if [ "$rc" -eq 0 ]; then
        echo "==> stage ${stage}: ok in $((t1 - t0))s"
    else
        echo "==> stage ${stage}: FAILED after $((t1 - t0))s" >&2
    fi
    return "$rc"
}

lint() {
    echo "==> cargo fmt --check"
    cargo fmt --all --check

    echo "==> cargo clippy -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings

    echo "==> cargo doc --no-deps (rustdoc warnings denied)"
    # The bulk Vm API is the public workload-facing surface; broken intra-doc
    # links or undocumented public items fail the gate.
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet
}

test_debug() {
    echo "==> cargo build (debug)"
    cargo build --workspace

    echo "==> cargo test (debug, workspace)"
    cargo test --workspace -q
}

test_release() {
    echo "==> cargo build --release"
    cargo build --release

    echo "==> cargo test --release (workspace)"
    cargo test --release --workspace -q
}

test_scalar() {
    echo "==> cargo test --release with AVR_NO_SIMD=1 (scalar codec arm)"
    # The dispatcher honors AVR_NO_SIMD at first use, so the whole suite —
    # including the reference-oracle and determinism tests — runs on the
    # portable scalar kernels, exactly what a non-x86 host would execute.
    AVR_NO_SIMD=1 cargo test --release --workspace -q
}

test_perword() {
    echo "==> cargo test --release with AVR_NO_BATCHED_WALK=1 (per-word timed walk)"
    # Every default-constructed System runs the retained per-word walk, so
    # the whole suite — workloads, determinism, zero-alloc, figure smoke —
    # exercises the reference semantics the batched walk is pinned against
    # (tests/batched_walk.rs re-enables batching explicitly on one side of
    # its oracle, so the equivalence check itself stays meaningful here).
    AVR_NO_BATCHED_WALK=1 cargo test --release --workspace -q
}

test_relaxed() {
    echo "==> cargo test --release with AVR_BACKEND=relaxed (fault-injecting DRAM)"
    # The error-model override applies to every System whose config does
    # not pin a backend, so the whole suite — workloads, determinism,
    # zero-alloc, figure smoke — runs with retention faults injected at
    # the default rates. Codec-band tests pin the exact backend
    # explicitly (device faults are not codec error); the dedicated
    # fault-injection harness pins the faulty backends and so runs
    # identically in every leg.
    AVR_BACKEND=relaxed cargo test --release --workspace -q
}

test_pooled() {
    echo "==> cargo test --release with AVR_THREADS=4 (4-wide SimPool)"
    # AVR_THREADS overrides every default-width SimPool, so the whole
    # suite runs its grid sweeps and Table 4 summaries four workers wide
    # even on a smaller CI runner: chunked claiming, heaviest-first
    # scheduling and the golden-run memoization all execute under real
    # worker concurrency, and the determinism tests verify the results
    # stay bit-identical to the 1-thread order. Tests that construct
    # explicit-width pools (tests/determinism.rs, tests/scaling.rs) are
    # unaffected — SimPool::new ignores the env.
    AVR_THREADS=4 cargo test --release --workspace -q
}

perf() {
    echo "==> perf smoke: end-to-end blocks/s vs committed BENCH_PR8.json"
    # Fails when any workload's blocks/s regresses > 25 % against the
    # committed trajectory baseline (median-calibrated: uniform machine
    # speed cancels), and hard-fails on workload/backend/layout set
    # drift; the JSON is uploaded as a CI artifact. The baseline is
    # BENCH_PR8.json — first trajectory with the ten-workload suite
    # (particles joined) and the per-layout section, so the smoke gate
    # exercises the non-default aos/partitioned layouts on every run; on
    # a multi-core runner the gate also fails if the pooled Table 4
    # sweep is slower than single-thread (the ROADMAP re-gate rule
    # applies).
    cargo run --release -p avr-bench --bin bench_e2e -- \
        --smoke --check BENCH_PR8.json --out bench-e2e-smoke.json

    echo "==> codec kernel smoke (reference vs fused, shrunk measurement)"
    AVR_BENCH_FAST=1 cargo run --release -p avr-bench --bin bench_codec -- /tmp/bench_smoke.json
    AVR_BENCH_FAST=1 cargo bench --bench codec_kernels -p avr-bench
}

case "${1:-all}" in
    lint) run_stage lint lint ;;
    test-debug) run_stage test-debug test_debug ;;
    test-release) run_stage test-release test_release ;;
    test-scalar) run_stage test-scalar test_scalar ;;
    test-perword) run_stage test-perword test_perword ;;
    test-relaxed) run_stage test-relaxed test_relaxed ;;
    test-pooled) run_stage test-pooled test_pooled ;;
    perf) run_stage perf perf ;;
    quick)
        run_stage lint lint
        run_stage test-release test_release
        ;;
    all)
        run_stage lint lint
        run_stage test-debug test_debug
        run_stage test-release test_release
        run_stage test-scalar test_scalar
        run_stage test-perword test_perword
        run_stage test-relaxed test_relaxed
        run_stage test-pooled test_pooled
        run_stage perf perf
        ;;
    *)
        echo "usage: ./ci.sh [lint|test-debug|test-release|test-scalar|test-perword|test-relaxed|test-pooled|perf|quick|all]" >&2
        exit 2
        ;;
esac

echo "==> ci.sh ${1:-all}: all green"
