#!/usr/bin/env bash
# CI gate, split into the stages .github/workflows/ci.yml runs as a matrix
# (so lint failures report in minutes, not after a full release build):
#
#   ./ci.sh               full gate: lint + debug tests + release tests +
#                         scalar-fallback tests + perf
#   ./ci.sh lint          rustfmt + clippy -D warnings + cargo doc --no-deps
#                         (rustdoc warnings denied: the redesigned public
#                         bulk Vm API stays documented)
#   ./ci.sh test-debug    debug build + full test suite
#   ./ci.sh test-release  release build + full test suite
#   ./ci.sh test-scalar   release test suite with AVR_NO_SIMD=1 — forces
#                         the portable scalar codec arm so the non-dispatch
#                         path can never rot
#   ./ci.sh test-perword  release test suite with AVR_NO_BATCHED_WALK=1 —
#                         forces the per-word timed walk (the batched span
#                         walk's reference semantics) so the equivalence
#                         oracle keeps running against live code
#   ./ci.sh test-relaxed  release test suite with AVR_BACKEND=relaxed —
#                         every default-constructed System runs on the
#                         fault-injecting relaxed-refresh DRAM backend at
#                         its default rates, so the graceful-degradation
#                         and criticality-protection paths can never rot
#   ./ci.sh test-pooled   release test suite with AVR_THREADS=4 — every
#                         default-width SimPool (grid sweeps, Table 4
#                         summaries, figure smoke) runs four workers wide,
#                         so the chunked claiming / weighted scheduling /
#                         golden-memoization machinery is exercised under
#                         real concurrency by the whole suite, not only by
#                         the tests that construct wide pools themselves
#   ./ci.sh server-smoke  sweep-server end-to-end: the stacking-study
#                         example in --smoke mode (submit over loopback,
#                         reassemble the stream, bit-compare every wire
#                         cell to a direct run), plus the sweep_server
#                         binary driven over a real socket
#   ./ci.sh perf          bench smoke: bench_e2e --smoke gated against the
#                         committed BENCH_PR10.json + codec kernel smoke
#   ./ci.sh quick         fast local pre-commit check (lint + release tests)
#
# Every stage prints its wall time on completion (run_stage), so a slow CI
# leg is attributable to a stage instead of to "the job".
#
# Everything builds with the repo's .cargo/config.toml (host-native
# codegen) and the channel pinned by rust-toolchain.toml; see
# PERFORMANCE.md.

set -euo pipefail
cd "$(dirname "$0")"

# Run one named stage function and report its wall time, pass or fail.
run_stage() {
    local stage="$1" fn="$2" t0 t1 rc=0
    t0=$SECONDS
    "$fn" || rc=$?
    t1=$SECONDS
    if [ "$rc" -eq 0 ]; then
        echo "==> stage ${stage}: ok in $((t1 - t0))s"
    else
        echo "==> stage ${stage}: FAILED after $((t1 - t0))s" >&2
    fi
    return "$rc"
}

lint() {
    echo "==> cargo fmt --check"
    cargo fmt --all --check

    echo "==> cargo clippy -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings

    echo "==> cargo doc --no-deps (rustdoc warnings denied)"
    # The bulk Vm API is the public workload-facing surface; broken intra-doc
    # links or undocumented public items fail the gate.
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet
}

test_debug() {
    echo "==> cargo build (debug)"
    cargo build --workspace

    echo "==> cargo test (debug, workspace)"
    cargo test --workspace -q
}

test_release() {
    echo "==> cargo build --release"
    cargo build --release

    echo "==> cargo test --release (workspace)"
    cargo test --release --workspace -q
}

test_scalar() {
    echo "==> cargo test --release with AVR_NO_SIMD=1 (scalar codec arm)"
    # The dispatcher honors AVR_NO_SIMD at first use, so the whole suite —
    # including the reference-oracle and determinism tests — runs on the
    # portable scalar kernels, exactly what a non-x86 host would execute.
    AVR_NO_SIMD=1 cargo test --release --workspace -q
}

test_perword() {
    echo "==> cargo test --release with AVR_NO_BATCHED_WALK=1 (per-word timed walk)"
    # Every default-constructed System runs the retained per-word walk, so
    # the whole suite — workloads, determinism, zero-alloc, figure smoke —
    # exercises the reference semantics the batched walk is pinned against
    # (tests/batched_walk.rs re-enables batching explicitly on one side of
    # its oracle, so the equivalence check itself stays meaningful here).
    AVR_NO_BATCHED_WALK=1 cargo test --release --workspace -q
}

test_relaxed() {
    echo "==> cargo test --release with AVR_BACKEND=relaxed (fault-injecting DRAM)"
    # The error-model override applies to every System whose config does
    # not pin a backend, so the whole suite — workloads, determinism,
    # zero-alloc, figure smoke — runs with retention faults injected at
    # the default rates. Codec-band tests pin the exact backend
    # explicitly (device faults are not codec error); the dedicated
    # fault-injection harness pins the faulty backends and so runs
    # identically in every leg.
    AVR_BACKEND=relaxed cargo test --release --workspace -q
}

test_pooled() {
    echo "==> cargo test --release with AVR_THREADS=4 (4-wide SimPool)"
    # AVR_THREADS overrides every default-width SimPool, so the whole
    # suite runs its grid sweeps and Table 4 summaries four workers wide
    # even on a smaller CI runner: chunked claiming, heaviest-first
    # scheduling and the golden-run memoization all execute under real
    # worker concurrency, and the determinism tests verify the results
    # stay bit-identical to the 1-thread order. Tests that construct
    # explicit-width pools (tests/determinism.rs, tests/scaling.rs) are
    # unaffected — SimPool::new ignores the env.
    AVR_THREADS=4 cargo test --release --workspace -q
}

server_smoke() {
    echo "==> sweep-server smoke: stacking study (loopback, bit-compared to direct runs)"
    # The example submits a batch to an in-process server and, in --smoke
    # mode, re-computes every cell directly and bit-compares the wire
    # metrics — the server determinism contract as a runnable check.
    cargo run --release --example stacking_study -- --smoke

    echo "==> sweep_server binary over a real socket"
    # Start the standalone binary on an ephemeral port, drive one tiny
    # batch through it from a second process, then shut it down over the
    # protocol (drain) and require a clean exit.
    local logfile addr rc=0
    logfile=$(mktemp)
    cargo build --release -q -p avr-server --bin sweep_server
    ./target/release/sweep_server --addr 127.0.0.1:0 >"$logfile" &
    local server_pid=$!
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^listening on //p' "$logfile")
        [ -n "$addr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "sweep_server never reported its address" >&2
        kill "$server_pid" 2>/dev/null || true
        rm -f "$logfile"
        return 1
    fi
    # One submit + drain over the line protocol; the server must stream a
    # result for the cell, report the job done, and exit zero on drain.
    timeout 120 python3 - "$addr" <<'PYEOF' || rc=$?
import socket, sys
host, port = sys.argv[1].rsplit(":", 1)
requests = (
    b'{ "cmd": "submit", "cells": [ { "workload": "heat" } ] }\n'
    b'{ "cmd": "drain" }\n'
)
s = socket.create_connection((host, int(port)), timeout=110)
s.sendall(requests)
buf = b""
while b'"event":"job_done"' not in buf:
    chunk = s.recv(65536)
    if not chunk:
        sys.exit("connection closed before job_done")
    buf += chunk
text = buf.decode()
assert '"event":"result"' in text, text
assert '"completed":1' in text, text
print("sweep_server smoke: 1 cell streamed, job done, drained")
PYEOF
    wait "$server_pid" || rc=$?
    rm -f "$logfile"
    return "$rc"
}

perf() {
    echo "==> perf smoke: end-to-end blocks/s vs committed BENCH_PR10.json"
    # Fails when any workload's blocks/s regresses > 25 % against the
    # committed trajectory baseline (median-calibrated: uniform machine
    # speed cancels), and hard-fails on workload/backend/layout/design
    # set drift; the JSON is uploaded as a CI artifact. The baseline is
    # BENCH_PR10.json — first trajectory with the per-design section
    # (the full `DesignKind::ALL` set including the memoization family)
    # alongside the ten-workload suite, the per-backend and per-layout
    # sections and the sweep-server loopback record, so the smoke gate
    # exercises every design's engine path on every run; on a multi-core
    # runner the gate also fails if the pooled Table 4 sweep is slower
    # than single-thread (the ROADMAP re-gate rule applies).
    cargo run --release -p avr-bench --bin bench_e2e -- \
        --smoke --check BENCH_PR10.json --out bench-e2e-smoke.json

    echo "==> codec kernel smoke (reference vs fused, shrunk measurement)"
    AVR_BENCH_FAST=1 cargo run --release -p avr-bench --bin bench_codec -- /tmp/bench_smoke.json
    AVR_BENCH_FAST=1 cargo bench --bench codec_kernels -p avr-bench
}

case "${1:-all}" in
    lint) run_stage lint lint ;;
    test-debug) run_stage test-debug test_debug ;;
    test-release) run_stage test-release test_release ;;
    test-scalar) run_stage test-scalar test_scalar ;;
    test-perword) run_stage test-perword test_perword ;;
    test-relaxed) run_stage test-relaxed test_relaxed ;;
    test-pooled) run_stage test-pooled test_pooled ;;
    server-smoke) run_stage server-smoke server_smoke ;;
    perf) run_stage perf perf ;;
    quick)
        run_stage lint lint
        run_stage test-release test_release
        ;;
    all)
        run_stage lint lint
        run_stage test-debug test_debug
        run_stage test-release test_release
        run_stage test-scalar test_scalar
        run_stage test-perword test_perword
        run_stage test-relaxed test_relaxed
        run_stage test-pooled test_pooled
        run_stage server-smoke server_smoke
        run_stage perf perf
        ;;
    *)
        echo "usage: ./ci.sh [lint|test-debug|test-release|test-scalar|test-perword|test-relaxed|test-pooled|server-smoke|perf|quick|all]" >&2
        exit 2
        ;;
esac

echo "==> ci.sh ${1:-all}: all green"
