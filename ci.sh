#!/usr/bin/env bash
# CI gate: formatting, lints, the full test suite, and a bench smoke run.
#
#   ./ci.sh          full gate (what .github/workflows/ci.yml runs)
#   ./ci.sh quick    skip the bench smoke (fast local pre-commit check)
#
# Everything builds with the repo's .cargo/config.toml (host-native
# codegen); see PERFORMANCE.md.

set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (workspace)"
cargo test --workspace -q

if [[ "${1:-}" != "quick" ]]; then
    echo "==> bench smoke (tiny scale, shrunk measurement)"
    # codec kernels: reference-vs-fused comparison at smoke precision; the
    # JSON lands in a scratch file (the committed BENCH_*.json trajectory
    # files are produced by a full run: cargo run --release -p avr-bench
    # --bin bench_codec -- BENCH_PRn.json).
    AVR_BENCH_FAST=1 cargo run --release -p avr-bench --bin bench_codec -- /tmp/bench_smoke.json
    AVR_BENCH_FAST=1 cargo bench --bench codec_kernels -p avr-bench
fi

echo "==> ci.sh: all green"
