//! Run an SPMD heat shard on every core of the paper's 8-core CMP
//! (partitioned-share model) and compare designs at the chip level.
//!
//! ```text
//! cargo run --release --example multicore_cmp
//! ```

use avr::arch::multicore::{run_multicore, ShardedWorkload};
use avr::arch::{DesignKind, SystemConfig, Vm};
use avr::types::{DataType, PhysAddr};

/// Each core diffuses its own strip of a wide plate.
struct HeatShard {
    width: usize,
    rows_per_core: usize,
    iters: usize,
}

impl ShardedWorkload for HeatShard {
    fn name(&self) -> &'static str {
        "heat_spmd"
    }

    fn run_shard(&self, core: usize, _total: usize, vm: &mut dyn Vm) -> Vec<f64> {
        let (w, h) = (self.width, self.rows_per_core);
        let n = w * h;
        let a = vm.approx_malloc(4 * n, DataType::F32).base;
        let b = vm.approx_malloc(4 * n, DataType::F32).base;
        let at = |base: PhysAddr, i: usize| PhysAddr(base.0 + 4 * i as u64);
        // Initialize row-by-row through the bulk API.
        let mut row = vec![0f32; w];
        for y in 0..h {
            for (x, t) in row.iter_mut().enumerate() {
                *t = 20.0
                    + 300.0
                        * (-((x as f32 - w as f32 * 0.5).powi(2)
                            + (y as f32 - h as f32 * 0.5).powi(2))
                            / (w as f32 * 6.0))
                            .exp()
                    + core as f32;
            }
            vm.compute(10 * w as u64);
            vm.write_f32s(at(a, y * w), &row);
        }
        // Jacobi sweeps: the 5-point stencil as three contiguous row loads
        // per destination row.
        let mut up = vec![0f32; w];
        let mut cur = vec![0f32; w];
        let mut down = vec![0f32; w];
        let mut next = vec![0f32; w - 2];
        let (mut src, mut dst) = (a, b);
        for _ in 0..self.iters {
            for y in 1..h - 1 {
                vm.read_f32s(at(src, (y - 1) * w), &mut up);
                vm.read_f32s(at(src, (y + 1) * w), &mut down);
                vm.read_f32s(at(src, y * w), &mut cur);
                for x in 1..w - 1 {
                    next[x - 1] = 0.25 * (up[x] + down[x] + cur[x - 1] + cur[x + 1]);
                }
                vm.compute(6 * (w - 2) as u64);
                vm.write_f32s(at(dst, y * w + 1), &next);
            }
            std::mem::swap(&mut src, &mut dst);
        }
        vec![vm.read_f32(at(src, (h / 2) * w + w / 2)) as f64]
    }
}

fn main() {
    let cores = 8;
    let shard = HeatShard { width: 256, rows_per_core: 128, iters: 3 };
    // Per-core share of Table 1's hierarchy (1 MB of the 8 MB LLC, a
    // quarter-channel of DDR4 bandwidth).
    let cfg = SystemConfig::per_core_scaled();

    println!("8-core SPMD heat, partitioned-share CMP model\n");
    println!("{:<10}{:>16}{:>14}{:>12}", "design", "makespan (cyc)", "traffic (MB)", "energy (mJ)");
    let mut baseline_cycles = 0u64;
    for design in [DesignKind::Baseline, DesignKind::Truncate, DesignKind::Avr] {
        let run = run_multicore(&shard, &cfg, design, cores);
        if design == DesignKind::Baseline {
            baseline_cycles = run.cycles();
        }
        println!(
            "{:<10}{:>16}{:>14.1}{:>12.2}   ({:.2}x vs baseline)",
            design.label(),
            run.cycles(),
            run.total_traffic() as f64 / 1e6,
            run.total_energy() * 1e3,
            run.cycles() as f64 / baseline_cycles as f64,
        );
    }
}
