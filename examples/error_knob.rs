//! The paper's quality knob (§3.3): sweep the T1/T2 error thresholds and
//! watch the tradeoff between compression ratio and application output
//! error on the heat benchmark — an ablation of AVR's central parameter.
//!
//! ```text
//! cargo run --release --example error_knob
//! ```

use avr::arch::{DesignKind, SystemConfig};
use avr::workloads::{heat::Heat, run_on_design, BenchScale};

fn main() {
    let heat = Heat::at_scale(BenchScale::Tiny);
    println!(
        "{:<12}{:>12}{:>14}{:>14}{:>16}",
        "T1 (%)", "ratio", "traffic norm", "error (%)", "exec norm"
    );

    // Baseline for normalization (thresholds are irrelevant to it).
    let base = run_on_design(&heat, &SystemConfig::tiny(), DesignKind::Baseline);

    for t1 in [0.005, 0.01, 0.02, 0.05, 0.10] {
        let mut cfg = SystemConfig::tiny();
        cfg.avr.t1 = t1;
        cfg.avr.t2 = t1 / 2.0; // the paper runs T1 = 2*T2
        let m = run_on_design(&heat, &cfg, DesignKind::Avr);
        println!(
            "{:<12.2}{:>11.1}x{:>14.3}{:>14.3}{:>16.3}",
            t1 * 100.0,
            m.compression_ratio,
            m.traffic_norm(&base),
            m.output_error * 100.0,
            m.exec_time_norm(&base),
        );
    }
    println!(
        "\nLooser thresholds compress harder (higher ratio, less traffic)\n\
         at the cost of output quality — the knob the paper exposes to the\n\
         application provider."
    );
}
