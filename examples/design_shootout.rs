//! Run one workload across all five designs of the paper's evaluation and
//! print a compact comparison — a miniature of Figures 9–13 for a single
//! benchmark, runnable in seconds.
//!
//! ```text
//! cargo run --release --example design_shootout [heat|lattice|lbm|orbit|kmeans|bscholes|wrf]
//! ```

use avr::arch::{DesignKind, SystemConfig};
use avr::workloads::{all_benchmarks, run_on_design, BenchScale};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "lattice".to_string());
    let suite = all_benchmarks(BenchScale::Tiny);
    let workload = suite.iter().find(|w| w.name() == which).unwrap_or_else(|| {
        panic!("unknown benchmark {which}; try one of heat/lattice/lbm/orbit/kmeans/bscholes/wrf")
    });

    let cfg = SystemConfig::tiny();
    println!("benchmark: {which} (tiny scale)\n");
    println!(
        "{:<10}{:>10}{:>10}{:>10}{:>10}{:>10}{:>12}",
        "design", "exec", "energy", "traffic", "AMAT", "MPKI", "error (%)"
    );

    let base = run_on_design(workload.as_ref(), &cfg, DesignKind::Baseline);
    for design in DesignKind::ALL {
        let m = run_on_design(workload.as_ref(), &cfg, design);
        println!(
            "{:<10}{:>10.3}{:>10.3}{:>10.3}{:>10.3}{:>10.3}{:>12.3}",
            m.design,
            m.exec_time_norm(&base),
            m.energy_norm(&base),
            m.traffic_norm(&base),
            m.amat_norm(&base),
            m.mpki_norm(&base),
            m.output_error * 100.0,
        );
    }
    println!("\n(all columns normalized to baseline; error is absolute)");
}
