//! Write your own workload against the `Vm` trait and measure it under
//! AVR: a moving-average filter over a sensor trace — the kind of
//! approximation-tolerant kernel AVR targets.
//!
//! The workload speaks the **bulk** `Vm` API through a declared **record
//! schema**: each logical record pairs the approximable raw sample with
//! the precise filtered result, and `Layout::instantiate` turns that
//! schema into concrete regions for whichever [`LayoutKind`] the run asks
//! for — SoA planes, an interleaved AoS, or hot/cold-partitioned groups —
//! with zero layout-specific code in the kernel. Each bulk call costs a
//! single dispatch into the simulator, which serves it through a
//! cacheline-coalesced fast path that is bit-identical — in values,
//! cycles and traffic — to issuing the equivalent word-at-a-time loop.
//!
//! Migration note for `Vm` implementors: every bulk method has a default
//! that decomposes into `read_u32`/`write_u32`, so a `Vm` written against
//! the original five-method interface (or any workload still issuing
//! per-word accesses) keeps compiling and behaves identically. Wrap a VM
//! in `avr::arch::WordAtATime` to force those defaults when you want to
//! check a bulk fast path against the per-word reference.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use avr::arch::{DesignKind, FieldSpec, Layout, LayoutKind, RecordSchema, SystemConfig, Vm};
use avr::workloads::{run_on_design, run_on_design_in, GoldenKey, Workload};

/// A 64-tap moving average over a noisy-but-correlated "sensor" signal.
struct MovingAverage {
    samples: usize,
}

const TAPS: usize = 64;
const CHUNK: usize = 4096;

/// Field indices into [`MovingAverage::schema`].
const RAW: usize = 0;
const FILTERED: usize = 1;

impl MovingAverage {
    /// One record per sample: the raw trace tolerates approximation; the
    /// filtered output is what the application actually consumes, so it
    /// stays precise. Under the default *conservative* policy an AoS
    /// instantiation prices the whole interleaved record precise (the
    /// granularity gap — see the per-layout table this example prints).
    fn schema() -> RecordSchema {
        RecordSchema::new(
            "sample",
            vec![FieldSpec::approx_f32("raw"), FieldSpec::precise_f32("filtered")],
        )
    }
}

impl Workload for MovingAverage {
    fn name(&self) -> &'static str {
        "moving_average"
    }

    // Optional: `run` below is a pure function of `samples`, so the exact
    // golden run this design comparison needs twice (once per
    // `run_on_design` call) can be memoized — computed once, shared across
    // designs/backends, bit-identical to recomputing. Omit this (the
    // default returns `None`) and every call recomputes, which is always
    // correct.
    fn golden_key(&self) -> Option<GoldenKey> {
        Some(GoldenKey::new("moving_average", &[self.samples as u64], 0))
    }

    // Optional: a coarse relative cost (element touches) so pooled sweeps
    // can claim heavy jobs first; only the ordering across jobs matters.
    fn cost_hint(&self) -> u64 {
        (self.samples * 3) as u64
    }

    // Optional: declare which layouts the kernel supports. Because every
    // access below goes through the `LayoutMap`, all three come for free.
    fn layouts(&self) -> &'static [LayoutKind] {
        &[LayoutKind::Soa, LayoutKind::Aos, LayoutKind::Partitioned]
    }

    fn run(&self, vm: &mut dyn Vm) -> Vec<f64> {
        self.run_in(vm, LayoutKind::Soa)
    }

    fn run_in(&self, vm: &mut dyn Vm, layout: LayoutKind) -> Vec<f64> {
        let n = self.samples;
        // The schema placed by the requested layout: field addressing from
        // here on is logical (field index, record index).
        let map = Layout::new(Self::schema(), layout).instantiate(vm, n);

        // A drifting baseline with sensor jitter, streamed to memory in
        // chunked bulk stores.
        let mut buf = vec![0f32; CHUNK];
        for start in (0..n).step_by(CHUNK) {
            let len = CHUNK.min(n - start);
            for (o, v) in buf[..len].iter_mut().enumerate() {
                let i = start + o;
                let t = i as f32 * 0.001;
                *v = 48.0 + 6.0 * t.sin() + 0.02 * ((i * 2654435761) % 97) as f32;
            }
            vm.compute(8 * len as u64);
            map.write_f32s(vm, RAW, start, &buf[..len]);
        }

        // 64-tap running mean: the window's leading edge and trailing edge
        // are two chunked read streams over the same trace.
        let mut lead = vec![0f32; CHUNK];
        let mut trail = vec![0f32; CHUNK];
        let mut out_buf = vec![0f32; CHUNK];
        let mut acc = 0f64;
        for start in (0..n).step_by(CHUNK) {
            let len = CHUNK.min(n - start);
            map.read_f32s(vm, RAW, start, &mut lead[..len]);
            // Trailing reads exist only once the window has filled.
            let t0 = start.saturating_sub(TAPS);
            let t_len = if start >= TAPS { len } else { (start + len).saturating_sub(TAPS) };
            if t_len > 0 {
                map.read_f32s(vm, RAW, t0, &mut trail[..t_len]);
            }
            for o in 0..len {
                let i = start + o;
                acc += lead[o] as f64;
                if i >= TAPS {
                    // trail holds samples starting at max(start-TAPS, 0).
                    let off = i - TAPS - t0;
                    acc -= trail[off] as f64;
                }
                let denom = TAPS.min(i + 1) as f64;
                out_buf[o] = (acc / denom) as f32;
            }
            vm.compute(6 * len as u64);
            map.write_f32s(vm, FILTERED, start, &out_buf[..len]);
        }

        // Output: a decimated view of the filtered signal — one strided
        // bulk load, whatever the layout's stride happens to be.
        let mut sample = vec![0f32; n.div_ceil(16)];
        map.read_f32s_every(vm, FILTERED, 0, 16, &mut sample);
        sample.iter().map(|&v| v as f64).collect()
    }
}

fn main() {
    let w = MovingAverage { samples: 200_000 };
    let cfg = SystemConfig::tiny();

    let base = run_on_design(&w, &cfg, DesignKind::Baseline);
    let avr = run_on_design(&w, &cfg, DesignKind::Avr);

    println!("moving-average filter over a 200k-sample sensor trace\n");
    println!("              baseline        AVR");
    println!("cycles     {:>11}{:>11}", base.cycles, avr.cycles);
    println!(
        "traffic    {:>10.1}MB{:>9.1}MB",
        base.counters.traffic.total() as f64 / 1e6,
        avr.counters.traffic.total() as f64 / 1e6
    );
    println!("exec norm  {:>11.3}{:>11.3}", 1.0, avr.exec_time_norm(&base));
    println!("ratio      {:>11.1}{:>10.1}x", 1.0, avr.compression_ratio);
    println!("out error  {:>10.3}%{:>10.3}%", 0.0, avr.output_error * 100.0);

    // The layout axis: the same kernel re-placed per layout. Conservative
    // AoS interleaves the precise result into every block, so the region
    // is precise end to end (nothing to compress) — the granularity gap.
    println!("\nlayout        ratio   compressible   out error");
    for layout in LayoutKind::ALL {
        let m = run_on_design_in(&w, &cfg, DesignKind::Avr, layout);
        let frac = m.compressible_blocks as f64 / (m.approx_blocks as f64).max(1.0);
        println!(
            "{:<12}{:>6.1}x{:>13.1}%{:>11.3}%",
            layout.label(),
            m.compression_ratio,
            100.0 * frac,
            m.output_error * 100.0
        );
    }
    println!(
        "\nThe filter's *output* error is far below the per-value threshold:\n\
         averaging washes the reconstruction error out — exactly the class\n\
         of application the paper targets."
    );
}
