//! Write your own workload against the `Vm` trait and measure it under
//! AVR: a moving-average filter over a sensor trace — the kind of
//! approximation-tolerant kernel AVR targets.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use avr::arch::{DesignKind, SystemConfig, Vm};
use avr::types::{DataType, PhysAddr};
use avr::workloads::{run_on_design, Workload};

/// A 64-tap moving average over a noisy-but-correlated "sensor" signal.
struct MovingAverage {
    samples: usize,
}

impl Workload for MovingAverage {
    fn name(&self) -> &'static str {
        "moving_average"
    }

    fn run(&self, vm: &mut dyn Vm) -> Vec<f64> {
        let n = self.samples;
        // The raw trace tolerates approximation; the filtered output is
        // what the application actually consumes, so it stays precise.
        let raw = vm.approx_malloc(4 * n, DataType::F32).base;
        let filtered = vm.malloc(4 * n).base;

        // A drifting baseline with sensor jitter.
        for i in 0..n {
            let t = i as f32 * 0.001;
            let v = 48.0 + 6.0 * t.sin() + 0.02 * ((i * 2654435761) % 97) as f32;
            vm.compute(8);
            vm.write_f32(PhysAddr(raw.0 + 4 * i as u64), v);
        }

        // 64-tap running mean (sliding window).
        let taps = 64usize;
        let mut acc = 0f64;
        for i in 0..n {
            let x = vm.read_f32(PhysAddr(raw.0 + 4 * i as u64)) as f64;
            acc += x;
            if i >= taps {
                let old = vm.read_f32(PhysAddr(raw.0 + 4 * (i - taps) as u64)) as f64;
                acc -= old;
            }
            let denom = taps.min(i + 1) as f64;
            vm.compute(6);
            vm.write_f32(PhysAddr(filtered.0 + 4 * i as u64), (acc / denom) as f32);
        }

        // Output: a decimated view of the filtered signal.
        (0..n)
            .step_by(16)
            .map(|i| vm.read_f32(PhysAddr(filtered.0 + 4 * i as u64)) as f64)
            .collect()
    }
}

fn main() {
    let w = MovingAverage { samples: 200_000 };
    let cfg = SystemConfig::tiny();

    let base = run_on_design(&w, &cfg, DesignKind::Baseline);
    let avr = run_on_design(&w, &cfg, DesignKind::Avr);

    println!("moving-average filter over a 200k-sample sensor trace\n");
    println!("              baseline        AVR");
    println!("cycles     {:>11}{:>11}", base.cycles, avr.cycles);
    println!(
        "traffic    {:>10.1}MB{:>9.1}MB",
        base.counters.traffic.total() as f64 / 1e6,
        avr.counters.traffic.total() as f64 / 1e6
    );
    println!("exec norm  {:>11.3}{:>11.3}", 1.0, avr.exec_time_norm(&base));
    println!("ratio      {:>11.1}{:>10.1}x", 1.0, avr.compression_ratio);
    println!("out error  {:>10.3}%{:>10.3}%", 0.0, avr.output_error * 100.0);
    println!(
        "\nThe filter's *output* error is far below the per-value threshold:\n\
         averaging washes the reconstruction error out — exactly the class\n\
         of application the paper targets."
    );
}
