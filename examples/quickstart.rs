//! Quickstart: allocate approximable memory, stream data through an AVR
//! system, and inspect what the architecture did with it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use avr::arch::{DesignKind, System, SystemConfig, Vm};
use avr::types::DataType;

fn main() {
    // A small system so the working set spills out of the LLC and the AVR
    // machinery (compression on eviction, lazy writebacks, DBUF) engages.
    let mut sys = System::new(SystemConfig::tiny(), DesignKind::Avr);

    // The paper's programming model: annotate the approximable allocation
    // with its datatype (§3.1). Pages are marked approximate; everything
    // else stays precise.
    let n = 64 * 1024; // 64k f32 values = 256 KB
    let field = sys.approx_malloc(4 * n, DataType::F32);
    println!("allocated {} KB approximable at {:?}", 4 * n / 1024, field.base);

    // Write a smooth field (a temperature-like profile) with one bulk
    // store, then stream some precise data (a strided line walk) to push
    // it out of the cache hierarchy.
    let profile: Vec<f32> = (0..n).map(|i| 300.0 + 25.0 * ((i as f32) * 1e-4).sin()).collect();
    sys.write_f32s(field.base, &profile);
    let scratch = sys.malloc(512 * 1024);
    let mut lines = vec![0f32; 512 * 1024 / 64];
    sys.read_f32s_strided(scratch.base, 64, &mut lines);

    // Read the field back (one bulk load): compressed blocks return
    // approximately reconstructed values.
    let mut back = vec![0f32; n];
    sys.read_f32s(field.base, &mut back);
    let mut worst: f32 = 0.0;
    for (got, expect) in back.iter().zip(&profile) {
        worst = worst.max(((got - expect) / expect).abs());
    }
    println!("worst relative read-back error: {:.4} % (T1 = 2 %)", worst * 100.0);

    let m = sys.finish("quickstart");
    let c = &m.counters;
    println!("\n--- what the architecture did ---");
    println!("cycles:              {}", m.cycles);
    println!("IPC:                 {:.2}", m.ipc);
    println!("LLC requests (approx lines):");
    println!("  misses:            {}", c.approx_requests.miss);
    println!("  uncompressed hits: {}", c.approx_requests.uncompressed_hit);
    println!("  DBUF hits:         {}", c.approx_requests.dbuf_hit);
    println!("  compressed hits:   {}", c.approx_requests.compressed_hit);
    println!("evictions:");
    println!("  recompress:        {}", c.evictions.recompress);
    println!("  lazy writeback:    {}", c.evictions.lazy_writeback);
    println!("  fetch+recompress:  {}", c.evictions.fetch_recompress);
    println!("  uncompressed WB:   {}", c.evictions.uncompressed_writeback);
    println!(
        "DRAM traffic:        {} KB (approx) + {} KB (precise)",
        c.traffic.approx() / 1024,
        c.traffic.nonapprox() / 1024
    );
    println!("compression ratio:   {:.1}:1", m.compression_ratio);
    println!("energy:              {:.3} mJ", m.energy.total() * 1e3);
    assert!(worst < 0.02 + 1e-3, "T1 must bound the read-back error");
}
