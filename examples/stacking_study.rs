//! Retention stacking study, served over the sweep server: how does
//! application output error stack up as DRAM refresh is relaxed under an
//! approximate-memory design? One multi-hundred-cell batch — every
//! workload × a ladder of refresh multipliers × several fault seeds on the
//! relaxed-DRAM backend — submitted to an in-process server and
//! reassembled from the result stream (the error-vs-fault-rate figure
//! shape of approximate-DRAM studies, cf. arXiv:2105.14151).
//!
//! ```text
//! cargo run --release --example stacking_study            # full 210-cell grid
//! cargo run --release --example stacking_study -- --smoke # CI-sized + self-check
//! ```
//!
//! `--smoke` shrinks the grid and additionally verifies, cell by cell,
//! that what came over the wire is bit-identical to computing the same
//! spec directly — the server determinism contract as a runnable check
//! (exit code 1 on any mismatch).

use avr::server::{base_config, metrics_to_json, Client, Json, SweepServer};
use avr::types::{BackendKind, CellSpec};
use avr::workloads::{run_on_design_in, workload_by_name, workload_names};

fn cell(workload: &str, refresh_multiplier: u64, seed: u64) -> CellSpec {
    let mut c = CellSpec::new(workload);
    c.backend = Some(BackendKind::RelaxedDram);
    c.seed = Some(seed);
    c.overrides.refresh_multiplier = Some(refresh_multiplier);
    c
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (workloads, multipliers, seeds): (Vec<&str>, Vec<u64>, Vec<u64>) = if smoke {
        (vec!["heat", "kmeans"], vec![1, 16, 64], vec![7])
    } else {
        (workload_names(), vec![1, 2, 4, 8, 16, 32, 64], vec![7, 11, 13])
    };

    let mut cells = Vec::new();
    for w in &workloads {
        for &m in &multipliers {
            for &s in &seeds {
                cells.push(cell(w, m, s));
            }
        }
    }
    let n = cells.len();
    println!(
        "stacking study: {} workloads x {} refresh steps x {} seeds = {} cells",
        workloads.len(),
        multipliers.len(),
        seeds.len(),
        n
    );

    let server = SweepServer::bind("127.0.0.1:0").expect("bind loopback");
    println!("sweep server on {} ({} worker(s))", server.local_addr(), server.threads());
    let (addr, handle) = server.spawn();
    let mut client = Client::connect(addr).expect("connect");
    let job = client.submit(cells.clone()).expect("submit");
    let outcome = client.collect_job(job).expect("collect");
    assert_eq!(outcome.completed as usize, n, "all cells must complete");

    // Reassemble the grid: cells were pushed workload-major, multiplier-mid,
    // seed-minor, and every result event carries its batch index.
    let metric = |i: usize, path: &[&str]| -> f64 {
        let mut v = outcome.results[i].as_ref().expect("cell present").get("metrics").unwrap();
        for key in path {
            v = v.get(key).unwrap();
        }
        v.as_f64().unwrap()
    };
    println!(
        "\n{:<10}{:>14}{:>16}{:>16}{:>14}",
        "refresh", "bit flips", "degraded lines", "sanitized", "error (%)"
    );
    for (mi, &m) in multipliers.iter().enumerate() {
        let mut flips = 0.0;
        let mut degraded = 0.0;
        let mut sanitized = 0.0;
        let mut err = 0.0;
        let mut count = 0.0;
        for wi in 0..workloads.len() {
            for si in 0..seeds.len() {
                let i = (wi * multipliers.len() + mi) * seeds.len() + si;
                flips += metric(i, &["counters", "faults", "injected_bit_flips"]);
                degraded += metric(i, &["counters", "faults", "degraded_lines"]);
                sanitized += metric(i, &["counters", "faults", "sanitized_values"]);
                err += metric(i, &["output_error"]);
                count += 1.0;
            }
        }
        println!(
            "{:<10}{:>14.1}{:>16.1}{:>16.1}{:>14.4}",
            format!("x{m}"),
            flips / count,
            degraded / count,
            sanitized / count,
            err / count * 100.0,
        );
    }
    println!(
        "\nNominal refresh (x1) injects nothing; each doubling of the refresh\n\
         interval raises the retention-failure rate, and the sanitizer keeps\n\
         the error growth graceful rather than catastrophic."
    );

    if smoke {
        // Self-check: every wire result must be bit-identical to computing
        // the same cell spec directly in this process.
        let mut bad = 0;
        for (i, spec) in cells.iter().enumerate() {
            let workload = workload_by_name(&spec.workload, spec.scale).unwrap();
            let direct = run_on_design_in(
                workload.as_ref(),
                &spec.config(&base_config(spec.scale)),
                spec.design,
                spec.layout,
            );
            let wire = outcome.results[i].as_ref().unwrap().get("metrics").unwrap().render();
            if wire != metrics_to_json(&direct).render() {
                eprintln!("cell {i} ({}) differs from the direct run", spec.workload);
                bad += 1;
            }
        }
        // The status endpoint must agree the batch is done and accounted.
        let status = client.status().expect("status");
        let done = status
            .get("jobs")
            .and_then(Json::as_arr)
            .and_then(|jobs| jobs.iter().find(|j| j.get("job").and_then(Json::as_u64) == Some(job)))
            .and_then(|j| j.get("completed"))
            .and_then(Json::as_u64);
        if done != Some(n as u64) {
            eprintln!("status reports {done:?} completed cells, expected {n}");
            bad += 1;
        }
        if bad > 0 {
            eprintln!("smoke check FAILED: {bad} mismatch(es)");
            std::process::exit(1);
        }
        println!("\nsmoke check passed: {n} wire cells bit-identical to direct runs");
    }

    client.shutdown().expect("shutdown");
    handle.join().unwrap().expect("server exit");
}
