//! # AVR — Approximate Value Reconstruction
//!
//! A full-system reproduction of *"AVR: Reducing Memory Traffic with
//! Approximate Value Reconstruction"* (Eldstål-Damlin, Trancoso, Sourdis —
//! ICPP 2019): an architecture for approximate memory compression that
//! downsamples 1 KB memory blocks 16:1, keeps hard-to-approximate values
//! as exact outliers, and co-locates compressed blocks with uncompressed
//! cachelines in a decoupled last-level cache.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`types`] — addresses, cachelines, blocks, configuration (Table 1)
//! * [`compress`] — the lossy codec (§3.3): biasing, downsampling,
//!   interpolation, error check, outliers
//! * [`dram`] — the cycle-approximate DDR4 model
//! * [`cache`] — set-associative caches, the decoupled AVR LLC (§3.4),
//!   CMT (§3.2), DBUF and PFE
//! * [`sim`] — interval core model, backing-store VM, energy model, stats
//! * [`baselines`] — Truncate and Doppelgänger comparison designs (§4.1)
//! * [`arch`] — the assembled systems and memory operations (§3.5)
//! * [`workloads`] — the ten benchmarks (Table 2's seven, two AxBench
//!   extensions, and the mixed-criticality `particles` step), each
//!   declaring a record schema the layout axis places as SoA / AoS /
//!   partitioned
//! * [`server`] — the sweep server: a TCP job service that queues grid
//!   batches onto the `SimPool` and streams results back, bit-identical
//!   to serial runs at any worker width
//!
//! ## Quickstart
//!
//! The workload–machine interface is the bulk [`arch::Vm`] API: memory
//! moves in batched slice transfers (with strided, gathered and
//! compute-fused variants), matching the 64 B-line / 1 KB-block
//! granularity the architecture itself works at. One bulk call costs one
//! dispatch into the simulator; the timed [`arch::System`] serves it
//! through cacheline-coalesced fast paths that are bit-identical — in
//! values, cycles and traffic — to the equivalent word-at-a-time loop.
//!
//! ```
//! use avr::arch::{DesignKind, System, SystemConfig, Vm};
//! use avr::types::DataType;
//!
//! let mut sys = System::new(SystemConfig::tiny(), DesignKind::Avr);
//! let region = sys.approx_malloc(64 << 10, DataType::F32);
//!
//! // One bulk store of a smooth field, one bulk load back.
//! let field: Vec<f32> = (0..1024).map(|i| 20.0 + i as f32 * 0.01).collect();
//! sys.write_f32s(region.base, &field);
//! let mut back = vec![0f32; 1024];
//! sys.read_f32s(region.base, &mut back);
//!
//! // A compute-fused in-place sweep: load, transform, account ALU work,
//! // store — per element, in one call.
//! sys.for_each_f32_mut(region.base, 1024, 4, &mut |_, v| v * 1.01);
//!
//! let metrics = sys.finish("demo");
//! assert!(metrics.cycles > 0);
//! ```
//!
//! ### Migrating a pre-bulk `Vm` implementation
//!
//! Every bulk method on [`arch::Vm`] has a default that decomposes into
//! the original word-at-a-time primitives (`read_u32`, `write_u32`,
//! `compute`), so a third-party `Vm` written against the five-method
//! interface keeps compiling — and keeps working, at per-word cost —
//! without any change. Override individual bulk methods only where the
//! backend can serve them faster; the contract for an override is
//! bit-identical observable behavior to the default decomposition.
//! [`arch::WordAtATime`] wraps any `Vm` and masks its bulk overrides,
//! which is how `tests/bulk_api.rs` pins the `System` fast paths to the
//! per-word reference for every workload × design.
//!
//! ### Running sweeps as a service
//!
//! Long configuration sweeps don't need the process that computes them to
//! be the process that asked: the sweep server accepts cell batches over
//! TCP, schedules them heaviest-first on its pool, and streams each cell's
//! full metrics back the moment it finishes. Disconnect and reconnect at
//! will — results are stored server-side and replayed on request.
//!
//! ```no_run
//! use avr::server::{Client, SweepServer};
//! use avr::types::{CellSpec, DesignKind};
//!
//! let (addr, handle) = SweepServer::bind("127.0.0.1:0")?.spawn();
//! let mut client = Client::connect(addr)?;
//! let cells: Vec<CellSpec> = DesignKind::ALL
//!     .into_iter()
//!     .map(|d| {
//!         let mut c = CellSpec::new("heat");
//!         c.design = d;
//!         c
//!     })
//!     .collect();
//! let job = client.submit(cells)?;
//! let outcome = client.collect_job(job)?;
//! assert_eq!(outcome.completed, 5);
//! client.shutdown()?;
//! handle.join().unwrap()?;
//! # Ok::<(), std::io::Error>(())
//! ```

pub use avr_baselines as baselines;
pub use avr_cache as cache;
pub use avr_compress as compress;
pub use avr_core as arch;
pub use avr_dram as dram;
pub use avr_server as server;
pub use avr_sim as sim;
pub use avr_types as types;
pub use avr_workloads as workloads;
