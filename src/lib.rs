//! # AVR — Approximate Value Reconstruction
//!
//! A full-system reproduction of *"AVR: Reducing Memory Traffic with
//! Approximate Value Reconstruction"* (Eldstål-Damlin, Trancoso, Sourdis —
//! ICPP 2019): an architecture for approximate memory compression that
//! downsamples 1 KB memory blocks 16:1, keeps hard-to-approximate values
//! as exact outliers, and co-locates compressed blocks with uncompressed
//! cachelines in a decoupled last-level cache.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`types`] — addresses, cachelines, blocks, configuration (Table 1)
//! * [`compress`] — the lossy codec (§3.3): biasing, downsampling,
//!   interpolation, error check, outliers
//! * [`dram`] — the cycle-approximate DDR4 model
//! * [`cache`] — set-associative caches, the decoupled AVR LLC (§3.4),
//!   CMT (§3.2), DBUF and PFE
//! * [`sim`] — interval core model, backing-store VM, energy model, stats
//! * [`baselines`] — Truncate and Doppelgänger comparison designs (§4.1)
//! * [`arch`] — the assembled systems and memory operations (§3.5)
//! * [`workloads`] — the nine benchmarks (Table 2's seven + two AxBench
//!   extensions)
//!
//! ## Quickstart
//!
//! ```
//! use avr::arch::{DesignKind, System, SystemConfig, Vm};
//! use avr::types::{DataType, PhysAddr};
//!
//! let mut sys = System::new(SystemConfig::tiny(), DesignKind::Avr);
//! let region = sys.approx_malloc(64 << 10, DataType::F32);
//! for i in 0..1024u64 {
//!     sys.write_f32(PhysAddr(region.base.0 + 4 * i), 20.0 + i as f32 * 0.01);
//! }
//! let metrics = sys.finish("demo");
//! assert!(metrics.cycles > 0);
//! ```

pub use avr_baselines as baselines;
pub use avr_cache as cache;
pub use avr_compress as compress;
pub use avr_core as arch;
pub use avr_dram as dram;
pub use avr_sim as sim;
pub use avr_types as types;
pub use avr_workloads as workloads;
