//! The layout-transform axis contract (PR 8): layouts change *placement*,
//! never math. On the lossless `ExactVm` every workload must produce
//! bit-identical output in every layout it supports; under the timed
//! system the pooled grid must stay width-deterministic per layout; and
//! the granularity-gap effect must be *measurable* — interleaving an
//! all-approximable multi-field record (AoS) reduces the fraction of
//! 1 KB blocks the AVR codec accepts versus the SoA planes.

use avr::arch::{BackendKind, DesignKind, ExactVm, LayoutKind, SimPool, SystemConfig};
use avr::workloads::{all_benchmarks, run_grid_layouts, run_on_design_in, BenchScale};

#[test]
fn every_workload_is_bit_identical_across_its_layouts_on_the_exact_vm() {
    // The lossless VM sees the same reads and writes in a different
    // address arrangement — any output difference is a porting bug in the
    // layout map, not an approximation effect.
    for w in all_benchmarks(BenchScale::Tiny) {
        let mut vm = ExactVm::new();
        let golden = w.run(&mut vm);
        assert!(!golden.is_empty(), "{} produced no output", w.name());
        for &layout in w.layouts() {
            let mut vm = ExactVm::new();
            let out = w.run_in(&mut vm, layout);
            assert_eq!(out.len(), golden.len(), "{} {layout:?}: output length changed", w.name());
            for (i, (a, b)) in golden.iter().zip(&out).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{} {layout:?}: output[{i}] diverged ({a} vs {b})",
                    w.name()
                );
            }
        }
    }
}

#[test]
fn every_workload_supports_aos_through_the_pooled_grid() {
    // The tentpole's coverage requirement: the whole suite runs in at
    // least SoA *and* AoS through the grid, with the compression summary
    // populated for the AVR design in both.
    let cfg = SystemConfig::tiny().with_backend(BackendKind::Exact);
    let suite = all_benchmarks(BenchScale::Tiny);
    let layouts = [LayoutKind::Soa, LayoutKind::Aos];
    let grid = run_grid_layouts(&SimPool::new(4), &suite, &cfg, &[DesignKind::Avr], &layouts);
    assert_eq!(grid.len(), suite.len() * layouts.len());
    for cell in &grid {
        assert!(
            cell.metrics.output_error.is_finite(),
            "{} {:?}: non-finite output error",
            cell.workload,
            cell.layout
        );
        // The granularity-gap signature, asserted cell by cell: workloads
        // whose mixed-criticality record uses the *conservative* policy
        // lose all approximation under AoS (the interleaved region must be
        // precise), while all-approx records and the aggressive particles
        // record keep approximable blocks in every layout.
        let conservative_mixed = matches!(cell.workload, "orbit" | "sobel" | "bscholes");
        if cell.layout == LayoutKind::Aos && conservative_mixed {
            assert_eq!(
                cell.metrics.approx_blocks, 0,
                "{}: conservative AoS must price the whole record precise",
                cell.workload
            );
        } else {
            assert!(
                cell.metrics.approx_blocks > 0,
                "{} {:?}: AVR run scanned no approximable blocks",
                cell.workload,
                cell.layout
            );
        }
    }
}

#[test]
fn particles_grid_is_thread_width_invariant_on_every_backend_and_layout() {
    // The new mixed-criticality workload through every device error model
    // and every layout it declares: a 4-thread grid must reproduce the
    // 1-thread grid bit-for-bit (outputs, cycles, traffic, faults).
    let suite = all_benchmarks(BenchScale::Tiny);
    let particles: Vec<_> = suite.into_iter().filter(|w| w.name() == "particles").collect();
    assert_eq!(particles.len(), 1);
    let designs = [DesignKind::Avr];
    for kind in BackendKind::ALL {
        let mut cfg = SystemConfig::tiny().with_backend(kind);
        // Elevated rates so the faulty backends actually inject at this
        // footprint (the default rates are near-zero at tiny scale).
        cfg.error_model.retention_fail_per_bit = 1e-5;
        cfg.error_model.mram_p01 = 1e-5;
        cfg.error_model.mram_p10 = 5e-6;
        let serial =
            run_grid_layouts(&SimPool::new(1), &particles, &cfg, &designs, &LayoutKind::ALL);
        let pooled =
            run_grid_layouts(&SimPool::new(4), &particles, &cfg, &designs, &LayoutKind::ALL);
        assert_eq!(serial.len(), LayoutKind::ALL.len(), "{kind:?}: grid shape");
        assert_eq!(serial.len(), pooled.len());
        for (a, b) in serial.iter().zip(&pooled) {
            let ctx = format!("{kind:?} {:?}", a.layout);
            assert_eq!(a.layout, b.layout, "{ctx}: grid order changed");
            let (ma, mb) = (&a.metrics, &b.metrics);
            assert_eq!(ma.cycles, mb.cycles, "{ctx}: cycles");
            assert_eq!(ma.counters.traffic, mb.counters.traffic, "{ctx}: traffic");
            assert_eq!(ma.counters.faults, mb.counters.faults, "{ctx}: fault counters");
            assert_eq!(ma.output_error.to_bits(), mb.output_error.to_bits(), "{ctx}: output error");
        }
    }
}

#[test]
fn aos_interleaving_reduces_the_compressible_block_fraction() {
    // The acceptance-criteria demonstration: on multi-field records the
    // AoS interleave mixes fields with different value distributions into
    // every 1 KB block, so fewer blocks pass the codec's error check than
    // under SoA planes. Required on at least three workloads; the
    // all-approximable multi-field records are the clean cases (no
    // criticality confound — the whole region stays approximable in both
    // layouts).
    let cfg = SystemConfig::tiny().with_backend(BackendKind::Exact);
    let suite = all_benchmarks(BenchScale::Tiny);
    let fraction = |m: &avr::sim::stats::RunMetrics| {
        assert!(m.approx_blocks > 0);
        m.compressible_blocks as f64 / m.approx_blocks as f64
    };
    let mut reduced = Vec::new();
    for name in ["fft", "lattice", "lbm", "heat"] {
        let w = suite.iter().find(|w| w.name() == name).unwrap();
        let soa = run_on_design_in(w.as_ref(), &cfg, DesignKind::Avr, LayoutKind::Soa);
        let aos = run_on_design_in(w.as_ref(), &cfg, DesignKind::Avr, LayoutKind::Aos);
        let (fs, fa) = (fraction(&soa), fraction(&aos));
        if fa < fs {
            reduced.push((name, fs, fa));
        }
    }
    assert!(
        reduced.len() >= 3,
        "AoS must measurably reduce the compressible fraction on >= 3 \
         multi-field workloads; got {reduced:?}"
    );
}
