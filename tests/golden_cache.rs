//! The golden-run memoization contract (`avr::workloads::golden`): a
//! cached golden is **bit-identical** to a fresh `ExactVm` run, shared
//! across designs / backends / pool widths, and computed **exactly once**
//! per key under concurrency.
//!
//! The cache and its hit/compute counters are process-global, so every
//! test here serializes on one lock and diffs the counters inside it.

use avr::arch::{BackendKind, DesignKind, ExactVm, SimPool, SystemConfig};
use avr::workloads::golden::{clear, stats};
use avr::workloads::{all_benchmarks, golden_run, run_on_design, BenchScale, Workload};
use std::sync::Mutex;

/// Serializes tests sharing the process-global cache; `cargo test` runs
/// the tests in this binary on parallel threads otherwise.
static CACHE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    // A panicking test poisons the lock; the cache state is still valid
    // for the next test because each test clears it first.
    CACHE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn memoized_golden_is_bit_identical_to_a_fresh_exact_run_for_every_workload() {
    let _guard = lock();
    for w in all_benchmarks(BenchScale::Tiny) {
        clear();
        let cold = golden_run(w.as_ref()); // computes + populates
        let warm = golden_run(w.as_ref()); // served from the cache
        let mut exact = ExactVm::new();
        let fresh = w.run(&mut exact);
        assert_eq!(cold.len(), fresh.len(), "{}: output shape", w.name());
        for (i, (c, f)) in cold.iter().zip(&fresh).enumerate() {
            assert_eq!(
                c.to_bits(),
                f.to_bits(),
                "{}: cached golden differs from a fresh run at [{i}]",
                w.name()
            );
        }
        // The warm lookup returns the *same* allocation — shared, not
        // recomputed-and-equal.
        assert!(std::sync::Arc::ptr_eq(&cold, &warm), "{}: warm lookup reran", w.name());
    }
}

#[test]
fn all_nine_workloads_opt_into_memoization_with_distinct_keys() {
    let _guard = lock();
    let suite = all_benchmarks(BenchScale::Tiny);
    let mut keys = std::collections::HashSet::new();
    for w in &suite {
        let key = w
            .golden_key()
            .unwrap_or_else(|| panic!("{}: in-tree workload must provide a golden key", w.name()));
        assert_eq!(key.workload, w.name());
        assert!(keys.insert(key), "{}: key collides with another workload", w.name());
        // The two scales must not collide on one cached output.
        assert!(w.cost_hint() >= 1, "{}: degenerate cost hint", w.name());
    }
    for w in all_benchmarks(BenchScale::Bench) {
        let key = w.golden_key().unwrap();
        assert!(keys.insert(key), "{}: bench-scale key collides with tiny", w.name());
    }
}

#[test]
fn golden_is_shared_across_designs_and_backends() {
    let _guard = lock();
    clear();
    let suite = all_benchmarks(BenchScale::Tiny);
    let w = suite.iter().find(|w| w.name() == "bscholes").unwrap();
    let (h0, c0) = (stats::hits(), stats::computes());

    // Five designs × three backends of measured cells: one golden compute,
    // fourteen cache hits, and the same error metric basis everywhere the
    // engine is exact.
    let mut errs = Vec::new();
    for backend in BackendKind::ALL {
        let cfg = SystemConfig::tiny().with_backend(backend);
        for design in DesignKind::ALL {
            errs.push(run_on_design(w.as_ref(), &cfg, design).output_error);
        }
    }
    assert_eq!(stats::computes() - c0, 1, "golden recomputed across designs/backends");
    assert_eq!(stats::hits() - h0, (DesignKind::ALL.len() * BackendKind::ALL.len() - 1) as u64);
    assert!(errs.iter().all(|e| e.is_finite()));
}

#[test]
fn concurrent_pool_workers_compute_each_golden_exactly_once() {
    let _guard = lock();
    clear();
    let suite = all_benchmarks(BenchScale::Tiny);
    let w = suite.iter().find(|w| w.name() == "kmeans").unwrap();
    let (h0, c0) = (stats::hits(), stats::computes());

    // Eight workers race on one key: the per-key once-cell admits exactly
    // one compute; the other seven block and then hit.
    let pool = SimPool::new(8);
    let outs = pool.run_jobs(8, |_ctx| golden_run(w.as_ref()));
    assert_eq!(stats::computes() - c0, 1, "racing workers duplicated a golden run");
    assert_eq!(stats::hits() - h0, 7);
    for o in &outs[1..] {
        assert!(std::sync::Arc::ptr_eq(&outs[0], o), "workers saw different goldens");
    }
}

#[test]
fn pooled_grid_computes_one_golden_per_workload() {
    let _guard = lock();
    clear();
    let suite = all_benchmarks(BenchScale::Tiny);
    let light: Vec<Box<dyn Workload>> =
        suite.into_iter().filter(|w| matches!(w.name(), "orbit" | "kmeans" | "bscholes")).collect();
    let c0 = stats::computes();
    let grid =
        avr::workloads::run_grid(&SimPool::new(4), &light, &SystemConfig::tiny(), &DesignKind::ALL);
    assert_eq!(grid.len(), light.len() * DesignKind::ALL.len());
    assert_eq!(
        stats::computes() - c0,
        light.len() as u64,
        "a (workload × design) grid must compute each golden once, not once per cell"
    );
}
