//! Property-based tests of the AVR codec: the invariants §3.3 promises,
//! checked over randomized finite blocks. The generator is a deterministic
//! splitmix64 stream (the build environment is offline, so no proptest);
//! every failure reports the case seed for replay.

use avr::compress::simd;
use avr::compress::{compress, compress_reference, decompress, CompressFailure, Thresholds};
use avr::types::{BlockData, DataType, VALUES_PER_BLOCK};

mod common;
use common::Rng;

/// Finite, non-degenerate magnitudes the workloads actually produce.
fn finite_f32(rng: &mut Rng) -> f32 {
    match rng.next_u64() % 4 {
        0 => rng.range_f32(-1.0e6, 1.0e6),
        1 => rng.range_f32(-1.0, 1.0),
        2 => rng.range_f32(1.0e-6, 1.0e-3),
        _ => 0.0,
    }
}

/// base + slope*i + curvature: the compressible family.
fn smooth_block(rng: &mut Rng) -> BlockData {
    let b = rng.range_f32(10.0, 1000.0);
    let s = rng.range_f32(-0.5, 0.5);
    let c = rng.range_f32(-0.001, 0.001);
    let mut words = [0u32; VALUES_PER_BLOCK];
    for (i, w) in words.iter_mut().enumerate() {
        let x = i as f32;
        *w = (b + s * x + c * x * x).to_bits();
    }
    BlockData { words }
}

fn arbitrary_block(rng: &mut Rng) -> BlockData {
    let mut words = [0u32; VALUES_PER_BLOCK];
    for w in words.iter_mut() {
        *w = finite_f32(rng).to_bits();
    }
    BlockData { words }
}

const CASES: u64 = 128;

fn for_arbitrary_blocks(seed: u64, mut check: impl FnMut(u64, &BlockData)) {
    for case in 0..CASES {
        let mut rng = Rng(seed ^ case);
        let block = arbitrary_block(&mut rng);
        check(case, &block);
    }
}

/// Whatever happens, a successful compression fits the size cap and its
/// bitmap popcount equals its outlier count.
#[test]
fn compressed_blocks_respect_the_size_cap() {
    let th = Thresholds::paper_default();
    for_arbitrary_blocks(0x5eed_0001, |case, block| {
        if let Ok(o) = compress(block, DataType::F32, &th, 8) {
            assert!(o.compressed.size_lines() <= 8, "case {case}");
            assert_eq!(o.compressed.outlier_count(), o.compressed.outliers.len(), "case {case}");
            assert!(o.compressed.ratio() >= 2.0, "case {case}");
        }
    });
}

/// decompress(compress(x)) is exactly the reconstructed view the simulator
/// feeds back into application memory.
#[test]
fn decompress_matches_reconstruction() {
    let th = Thresholds::paper_default();
    for_arbitrary_blocks(0x5eed_0002, |case, block| {
        if let Ok(o) = compress(block, DataType::F32, &th, 8) {
            assert_eq!(decompress(&o.compressed), o.reconstructed, "case {case}");
        }
    });
}

/// Non-outlier values respect the per-value threshold T1; outliers are
/// reproduced bit-exactly.
#[test]
fn t1_bounds_every_non_outlier() {
    let th = Thresholds::paper_default();
    for_arbitrary_blocks(0x5eed_0003, |case, block| {
        if let Ok(o) = compress(block, DataType::F32, &th, 8) {
            for i in 0..VALUES_PER_BLOCK {
                let orig = f32::from_bits(block.words[i]);
                let recon = f32::from_bits(o.reconstructed.words[i]);
                if o.compressed.is_outlier(i) {
                    assert_eq!(block.words[i], o.reconstructed.words[i], "case {case} value {i}");
                } else if orig != 0.0 && orig.is_finite() {
                    let rel = ((recon - orig) / orig).abs() as f64;
                    assert!(rel <= th.t1 + 1e-9, "case {case} value {i}: rel {rel}");
                }
            }
            assert!(o.avg_err <= th.t2 + 1e-12, "case {case}");
        }
    });
}

/// Smooth data always compresses, and well.
#[test]
fn smooth_blocks_always_compress() {
    let th = Thresholds::paper_default();
    for case in 0..CASES {
        let mut rng = Rng(0x5eed_0004 ^ case);
        let block = smooth_block(&mut rng);
        let o = compress(&block, DataType::F32, &th, 8);
        assert!(o.is_ok(), "case {case}: smooth block failed: {o:?}");
        assert!(o.unwrap().compressed.size_lines() <= 4, "case {case}");
    }
}

/// Tightening T1 never decreases the outlier count.
#[test]
fn tighter_thresholds_mean_more_outliers() {
    let loose = Thresholds::new(0.05, 0.025);
    let tight = Thresholds::new(0.005, 0.0025);
    for_arbitrary_blocks(0x5eed_0005, |case, block| {
        let lo = compress(block, DataType::F32, &loose, 16);
        let to = compress(block, DataType::F32, &tight, 16);
        if let (Ok(l), Ok(t)) = (lo, to) {
            assert!(t.outlier_count >= l.outlier_count, "case {case}");
        }
    });
}

/// Failure is always one of the two documented reasons.
#[test]
fn failures_are_classified() {
    let th = Thresholds::paper_default();
    for_arbitrary_blocks(0x5eed_0006, |case, block| match compress(block, DataType::F32, &th, 8) {
        Ok(_) => {}
        Err(CompressFailure::TooManyOutliers { lines_needed }) => {
            assert!(lines_needed > 8, "case {case}");
        }
        Err(CompressFailure::AvgErrorTooHigh { avg_err }) => {
            assert!(avg_err > th.t2, "case {case}");
        }
    });
}

/// One block drawn from the families the fused/reference oracle sweeps:
/// smooth fields, ramps, noise, NaN-sprinkled and bias-heavy (huge / tiny
/// magnitude) blocks, plus mixtures.
fn oracle_f32_block(rng: &mut Rng) -> BlockData {
    let family = rng.next_u64() % 6;
    let mut words = [0u32; VALUES_PER_BLOCK];
    match family {
        // Smooth quadratic field.
        0 => {
            let b = rng.range_f32(10.0, 1000.0);
            let s = rng.range_f32(-0.5, 0.5);
            let c = rng.range_f32(-0.001, 0.001);
            for (i, w) in words.iter_mut().enumerate() {
                let x = i as f32;
                *w = (b + s * x + c * x * x).to_bits();
            }
        }
        // Linear ramp with occasional spikes.
        1 => {
            let base = rng.range_f32(1.0, 5000.0);
            let slope = rng.range_f32(-2.0, 2.0);
            for (i, w) in words.iter_mut().enumerate() {
                let spike = rng.next_u64().is_multiple_of(37);
                let v = if spike { rng.range_f32(-1.0e8, 1.0e8) } else { base + slope * i as f32 };
                *w = v.to_bits();
            }
        }
        // White noise (incompressible).
        2 => {
            for w in words.iter_mut() {
                *w = rng.range_f32(-1.0e6, 1.0e6).to_bits();
            }
        }
        // Smooth with NaN/Inf sprinkles.
        3 => {
            let b = rng.range_f32(50.0, 500.0);
            for (i, w) in words.iter_mut().enumerate() {
                *w = match rng.next_u64() % 61 {
                    0 => f32::NAN.to_bits(),
                    1 => f32::INFINITY.to_bits(),
                    _ => (b + (i as f32 * 0.3).sin()).to_bits(),
                };
            }
        }
        // Bias-heavy: huge or tiny magnitudes.
        4 => {
            let scale = if rng.flip() { 1.0e18 } else { 1.0e-18 };
            let b = rng.range_f32(1.0, 9.0) * scale;
            for (i, w) in words.iter_mut().enumerate() {
                *w = (b * (1.0 + i as f32 * 1.0e-4)).to_bits();
            }
        }
        // Fully arbitrary finite values (mixed magnitudes + zeros).
        _ => {
            for w in words.iter_mut() {
                *w = finite_f32(rng).to_bits();
            }
        }
    }
    BlockData { words }
}

/// Q16.16 analogue of the oracle families.
fn oracle_fixed_block(rng: &mut Rng) -> BlockData {
    let family = rng.next_u64() % 3;
    let mut words = [0u32; VALUES_PER_BLOCK];
    match family {
        // Smooth Q16.16 ramp.
        0 => {
            let base = (rng.next_u64() % 2000) as i32 - 1000;
            let slope = (rng.next_u64() % 2000) as i32 - 1000;
            for (i, w) in words.iter_mut().enumerate() {
                *w = ((base << 16).wrapping_add(slope.wrapping_mul(i as i32))) as u32;
            }
        }
        // Noise over the full 32-bit range.
        1 => {
            for w in words.iter_mut() {
                *w = rng.next_u64() as u32;
            }
        }
        // Mostly-smooth with zero runs and spikes.
        _ => {
            for (i, w) in words.iter_mut().enumerate() {
                *w = match rng.next_u64() % 13 {
                    0 => 0,
                    1 => rng.next_u64() as u32,
                    _ => ((500i32 << 16) + (i as i32) * 700) as u32,
                };
            }
        }
    }
    BlockData { words }
}

/// Assert one fused outcome matches the reference outcome bit-for-bit
/// (success payloads identical, failures agreeing on mode and reported
/// average error).
#[track_caller]
fn assert_matches_reference(
    fused: &Result<avr::compress::CompressOutcome, CompressFailure>,
    reference: &Result<avr::compress::CompressOutcome, CompressFailure>,
    ctx: &str,
) {
    match (fused, reference) {
        (Ok(f), Ok(r)) => {
            assert_eq!(f.compressed, r.compressed, "{ctx}: block");
            assert_eq!(f.reconstructed, r.reconstructed, "{ctx}: reconstruction");
            assert_eq!(f.avg_err.to_bits(), r.avg_err.to_bits(), "{ctx}: avg_err");
            assert_eq!(f.outlier_count, r.outlier_count, "{ctx}: outlier count");
        }
        (Err(f), Err(r)) => {
            assert_eq!(
                std::mem::discriminant(f),
                std::mem::discriminant(r),
                "{ctx}: failure mode {f:?} vs {r:?}"
            );
            if let (
                CompressFailure::AvgErrorTooHigh { avg_err: fa },
                CompressFailure::AvgErrorTooHigh { avg_err: ra },
            ) = (f, r)
            {
                assert_eq!(fa.to_bits(), ra.to_bits(), "{ctx}: avg_err");
            }
        }
        other => panic!("{ctx}: outcome diverged: {other:?}"),
    }
}

/// `simd::force_arm` is process-global: the two per-arm oracle tests must
/// not interleave, or an iteration labeled for one arm would silently run
/// on another. Each takes this lock for its whole duration.
static ARM_PIN: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn pin_arms() -> std::sync::MutexGuard<'static, ()> {
    // A panic in the other test (poison) must not hide this test's result.
    ARM_PIN.lock().unwrap_or_else(|e| e.into_inner())
}

/// Compress `block` on every dispatch arm the CPU supports and assert each
/// outcome is bit-identical to the reference implementation. Forcing an
/// arm exercises its *dispatch* table — for SSE2 that is the per-kernel
/// mix (scalar 1-D reconstruction, 128-bit everything else), so the mixed
/// table is oracled end-to-end; the pure SSE2 1-D kernel keeps its own
/// oracle in `avr_compress::simd::equivalence`. Restores auto-dispatch
/// before returning. Caller must hold [`ARM_PIN`].
fn assert_all_arms_match_reference(
    block: &BlockData,
    dt: DataType,
    th: &Thresholds,
    max_lines: usize,
    ctx: &str,
) {
    let reference = compress_reference(block, dt, th, max_lines);
    for arm in simd::supported_arms() {
        assert!(simd::force_arm(Some(arm)), "{ctx}: cannot force {arm:?}");
        let fused = compress(block, dt, th, max_lines);
        assert_matches_reference(&fused, &reference, &format!("{ctx} [{}]", arm.name()));
    }
    simd::force_arm(None);
}

/// The oracle: the fused hot path is **bit-identical** to the retained
/// pre-refactor reference on success, and agrees on the failure mode, over
/// ≥1000 randomized blocks per data type (and several `max_lines` caps) —
/// on **every** dispatch arm the host supports (scalar, SSE2, AVX2).
#[test]
fn fused_codec_is_bit_identical_to_reference() {
    let _pin = pin_arms();
    let th = Thresholds::paper_default();
    for (dt, cases) in [(DataType::F32, 1200u64), (DataType::Fixed32, 1200u64)] {
        for case in 0..cases {
            let mut rng = Rng(0x0eac_1e00 ^ (case << 1) ^ dt as u64);
            let block = match dt {
                DataType::F32 => oracle_f32_block(&mut rng),
                DataType::Fixed32 => oracle_fixed_block(&mut rng),
            };
            let max_lines = [8usize, 4, 16][(case % 3) as usize];
            assert_all_arms_match_reference(
                &block,
                dt,
                &th,
                max_lines,
                &format!("{dt:?} case {case}"),
            );
        }
    }
}

/// Adversarial IEEE-754 corner blocks: all-NaN, mixed ±Inf, subnormal
/// fields, sign-flip boundaries and special-studded smooth data — every
/// dispatch arm must agree with the reference bit-for-bit on all of them.
#[test]
fn adversarial_blocks_are_bit_identical_on_every_arm() {
    let _pin = pin_arms();
    let th = Thresholds::paper_default();
    let mut blocks: Vec<(&'static str, BlockData)> = Vec::new();

    let from_fn = |f: &dyn Fn(usize) -> u32| {
        let mut words = [0u32; VALUES_PER_BLOCK];
        for (i, w) in words.iter_mut().enumerate() {
            *w = f(i);
        }
        BlockData { words }
    };

    // Every value NaN (varied payloads and signs).
    blocks.push((
        "all_nan",
        from_fn(&|i| f32::NAN.to_bits() | ((i as u32) << 13) | ((i as u32 & 1) << 31)),
    ));
    // Alternating ±Inf, with a smooth backdrop every fourth value.
    blocks.push((
        "mixed_inf",
        from_fn(&|i| match i % 4 {
            0 => f32::INFINITY.to_bits(),
            1 => f32::NEG_INFINITY.to_bits(),
            _ => (100.0 + i as f32 * 0.01).to_bits(),
        }),
    ));
    // A smooth, strictly subnormal field (max subnormal down-ramp).
    blocks.push(("subnormal_ramp", from_fn(&|i| 0x007F_FFFF - (i as u32 * 0x2000))));
    // Subnormals of both signs around zero.
    blocks.push((
        "subnormal_signs",
        from_fn(&|i| (i as u32 * 0x1003) & 0x007F_FFFF | (((i / 3) as u32 & 1) << 31)),
    ));
    // Sign-flip boundary: values hugging ±0 with alternating signs.
    blocks.push((
        "signflip_zeros",
        from_fn(&|i| match i % 4 {
            0 => 0x0000_0000,           // +0
            1 => 0x8000_0000,           // -0
            2 => 1e-30f32.to_bits(),    // tiny +
            _ => (-1e-30f32).to_bits(), // tiny -
        }),
    ));
    // Sign flips at full magnitude (alternating ±same value).
    blocks.push((
        "signflip_large",
        from_fn(&|i| (if i % 2 == 0 { 750.25f32 } else { -750.25 }).to_bits()),
    ));
    // Smooth block with one special of each kind (the bias path must
    // still collapse to bias 0 and keep every special an exact outlier).
    blocks.push((
        "smooth_with_specials",
        from_fn(&|i| match i {
            17 => f32::NAN.to_bits(),
            99 => f32::INFINITY.to_bits(),
            200 => f32::NEG_INFINITY.to_bits(),
            231 => 0x0000_0001, // min subnormal
            _ => (3000.0 + i as f32 * 0.125).to_bits(),
        }),
    ));
    // Extremes: ±f32::MAX checkerboard (bias overflow clamping).
    blocks.push((
        "max_magnitude",
        from_fn(&|i| (if (i / 16 + i) % 2 == 0 { f32::MAX } else { -f32::MAX }).to_bits()),
    ));

    for (name, block) in &blocks {
        for max_lines in [4usize, 8, 16] {
            assert_all_arms_match_reference(
                block,
                DataType::F32,
                &th,
                max_lines,
                &format!("adversarial {name} max_lines {max_lines}"),
            );
        }
    }
}

/// Compression is deterministic.
#[test]
fn compression_is_deterministic() {
    let th = Thresholds::paper_default();
    for_arbitrary_blocks(0x5eed_0007, |case, block| {
        let a = compress(block, DataType::F32, &th, 8);
        let b = compress(block, DataType::F32, &th, 8);
        match (a, b) {
            (Ok(x), Ok(y)) => assert_eq!(x.compressed, y.compressed, "case {case}"),
            (Err(_), Err(_)) => {}
            other => panic!("case {case}: divergent outcomes: {other:?}"),
        }
    });
}
