//! Property-based tests of the AVR codec: the invariants §3.3 promises,
//! checked over arbitrary finite blocks.

use avr::compress::{compress, decompress, CompressFailure, Thresholds};
use avr::types::{BlockData, DataType, VALUES_PER_BLOCK};
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    // Finite, non-degenerate magnitudes the workloads actually produce.
    prop_oneof![
        (-1.0e6f32..1.0e6),
        (-1.0f32..1.0),
        (1.0e-6f32..1.0e-3),
        Just(0.0f32),
    ]
}

fn smooth_block() -> impl Strategy<Value = BlockData> {
    // base + slope*i + curvature: the compressible family.
    ((10.0f32..1000.0), (-0.5f32..0.5), (-0.001f32..0.001)).prop_map(|(b, s, c)| {
        let mut words = [0u32; VALUES_PER_BLOCK];
        for (i, w) in words.iter_mut().enumerate() {
            let x = i as f32;
            *w = (b + s * x + c * x * x).to_bits();
        }
        BlockData { words }
    })
}

fn arbitrary_block() -> impl Strategy<Value = BlockData> {
    proptest::collection::vec(finite_f32(), VALUES_PER_BLOCK).prop_map(|vals| {
        let mut words = [0u32; VALUES_PER_BLOCK];
        for (w, v) in words.iter_mut().zip(&vals) {
            *w = v.to_bits();
        }
        BlockData { words }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever happens, a successful compression fits the size cap and
    /// its bitmap popcount equals its outlier count.
    #[test]
    fn compressed_blocks_respect_the_size_cap(block in arbitrary_block()) {
        let th = Thresholds::paper_default();
        if let Ok(o) = compress(&block, DataType::F32, &th, 8) {
            prop_assert!(o.compressed.size_lines() <= 8);
            prop_assert_eq!(o.compressed.outlier_count(), o.compressed.outliers.len());
            prop_assert!(o.compressed.ratio() >= 2.0);
        }
    }

    /// decompress(compress(x)) is exactly the reconstructed view the
    /// simulator feeds back into application memory.
    #[test]
    fn decompress_matches_reconstruction(block in arbitrary_block()) {
        let th = Thresholds::paper_default();
        if let Ok(o) = compress(&block, DataType::F32, &th, 8) {
            prop_assert_eq!(decompress(&o.compressed), o.reconstructed);
        }
    }

    /// Non-outlier values respect the per-value threshold T1; outliers are
    /// reproduced bit-exactly.
    #[test]
    fn t1_bounds_every_non_outlier(block in arbitrary_block()) {
        let th = Thresholds::paper_default();
        if let Ok(o) = compress(&block, DataType::F32, &th, 8) {
            for i in 0..VALUES_PER_BLOCK {
                let orig = f32::from_bits(block.words[i]);
                let recon = f32::from_bits(o.reconstructed.words[i]);
                if o.compressed.is_outlier(i) {
                    prop_assert_eq!(block.words[i], o.reconstructed.words[i]);
                } else if orig != 0.0 && orig.is_finite() {
                    let rel = ((recon - orig) / orig).abs() as f64;
                    prop_assert!(rel <= th.t1 + 1e-9, "value {i}: rel {rel}");
                }
            }
            prop_assert!(o.avg_err <= th.t2 + 1e-12);
        }
    }

    /// Smooth data always compresses, and well.
    #[test]
    fn smooth_blocks_always_compress(block in smooth_block()) {
        let th = Thresholds::paper_default();
        let o = compress(&block, DataType::F32, &th, 8);
        prop_assert!(o.is_ok(), "smooth block failed: {o:?}");
        prop_assert!(o.unwrap().compressed.size_lines() <= 4);
    }

    /// Tightening T1 never decreases the outlier count.
    #[test]
    fn tighter_thresholds_mean_more_outliers(block in arbitrary_block()) {
        let loose = Thresholds::new(0.05, 0.025);
        let tight = Thresholds::new(0.005, 0.0025);
        let lo = compress(&block, DataType::F32, &loose, 16);
        let to = compress(&block, DataType::F32, &tight, 16);
        if let (Ok(l), Ok(t)) = (lo, to) {
            prop_assert!(t.outlier_count >= l.outlier_count);
        }
    }

    /// Failure is always one of the two documented reasons.
    #[test]
    fn failures_are_classified(block in arbitrary_block()) {
        let th = Thresholds::paper_default();
        match compress(&block, DataType::F32, &th, 8) {
            Ok(_) => {}
            Err(CompressFailure::TooManyOutliers { lines_needed }) => {
                prop_assert!(lines_needed > 8);
            }
            Err(CompressFailure::AvgErrorTooHigh { avg_err }) => {
                prop_assert!(avg_err > th.t2);
            }
        }
    }

    /// Compression is deterministic.
    #[test]
    fn compression_is_deterministic(block in arbitrary_block()) {
        let th = Thresholds::paper_default();
        let a = compress(&block, DataType::F32, &th, 8);
        let b = compress(&block, DataType::F32, &th, 8);
        match (a, b) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x.compressed, y.compressed),
            (Err(_), Err(_)) => {}
            other => prop_assert!(false, "divergent outcomes: {other:?}"),
        }
    }
}
