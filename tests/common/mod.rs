//! Shared deterministic PRNG for the integration tests (the build
//! environment is offline, so no proptest/rand): splitmix64, seeded per
//! test case so failures replay exactly.

#[allow(dead_code)] // each test binary uses a different subset
pub struct Rng(pub u64);

#[allow(dead_code)]
impl Rng {
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, n).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform f32 in [0, 1).
    pub fn unit_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform f32 in [lo, hi).
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + self.unit_f32() * (hi - lo)
    }

    /// Fair coin.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}
