//! End-to-end integration: every benchmark × every design at tiny scale
//! completes, produces sane metrics, and preserves the paper's qualitative
//! invariants.

use avr::arch::{BackendKind, DesignKind, SystemConfig};
use avr::workloads::{all_benchmarks, run_on_design, BenchScale};

fn cfg() -> SystemConfig {
    SystemConfig::tiny()
}

/// The Table 3 error bands are *codec* properties, measured on an exact
/// device: a single injected exponent flip can push fft past any band, so
/// an `AVR_BACKEND` override must not leak into them. Device-fault
/// behavior has its own harness (`tests/fault_injection.rs`), which pins
/// the faulty backends explicitly and therefore runs in every CI leg.
fn codec_cfg() -> SystemConfig {
    SystemConfig::tiny().with_backend(BackendKind::Exact)
}

#[test]
fn every_design_runs_every_benchmark() {
    for w in all_benchmarks(BenchScale::Tiny) {
        for design in DesignKind::ALL {
            let m = run_on_design(w.as_ref(), &cfg(), design);
            assert!(m.cycles > 0, "{} on {:?} produced no cycles", w.name(), design);
            assert!(m.ipc > 0.0 && m.ipc <= 4.0, "{} IPC {} out of range", w.name(), m.ipc);
            assert!(
                m.output_error.is_finite() && m.output_error >= 0.0,
                "{} error {}",
                w.name(),
                m.output_error
            );
            assert!(m.energy.total() > 0.0);
        }
    }
}

#[test]
fn baseline_and_zeroavr_are_exact() {
    for w in all_benchmarks(BenchScale::Tiny) {
        for design in [DesignKind::Baseline, DesignKind::ZeroAvr] {
            let m = run_on_design(w.as_ref(), &cfg(), design);
            assert_eq!(m.output_error, 0.0, "{} must be bit-exact on {:?}", w.name(), design);
        }
    }
}

#[test]
fn zeroavr_tracks_baseline_performance() {
    // The paper: "when not approximating, AVR does not have notable
    // overheads". Allow a few percent of slack for the decoupled LLC.
    for w in all_benchmarks(BenchScale::Tiny) {
        let base = run_on_design(w.as_ref(), &cfg(), DesignKind::Baseline);
        let zero = run_on_design(w.as_ref(), &cfg(), DesignKind::ZeroAvr);
        let ratio = zero.exec_time_norm(&base);
        assert!((0.9..=1.1).contains(&ratio), "{}: ZeroAVR exec ratio {ratio}", w.name());
        assert_eq!(
            zero.counters.llc_misses_total,
            base.counters.llc_misses_total,
            "{}: decoupled LLC must miss exactly like the baseline when \
             nothing is approximable",
            w.name()
        );
    }
}

#[test]
fn avr_reduces_traffic_on_compressible_workloads() {
    // lattice and lbm have highly compressible working sets even at tiny
    // scale; AVR must move fewer bytes than the baseline.
    for w in all_benchmarks(BenchScale::Tiny) {
        if !matches!(w.name(), "lattice" | "lbm") {
            continue;
        }
        let base = run_on_design(w.as_ref(), &cfg(), DesignKind::Baseline);
        let avr = run_on_design(w.as_ref(), &cfg(), DesignKind::Avr);
        let t = avr.traffic_norm(&base);
        assert!(t < 0.95, "{}: AVR traffic ratio {t}", w.name());
    }
}

#[test]
fn truncate_error_is_bounded_by_the_mantissa_cut() {
    // Dropping 16 mantissa bits bounds each value's relative error by
    // 2^-8; outputs are combinations of inputs, so allow amplification
    // headroom but nothing runaway.
    for w in all_benchmarks(BenchScale::Tiny) {
        let m = run_on_design(w.as_ref(), &codec_cfg(), DesignKind::Truncate);
        assert!(m.output_error < 0.20, "{}: truncate output error {}", w.name(), m.output_error);
    }
}

#[test]
fn avr_error_stays_in_the_papers_band() {
    // Paper Table 3: AVR introduces at most 1.2 % output error except wrf
    // (8.9 %). Tiny scale is harsher on the codec (sharper features per
    // block), so allow 2x the paper's worst case per benchmark class.
    for w in all_benchmarks(BenchScale::Tiny) {
        let m = run_on_design(w.as_ref(), &codec_cfg(), DesignKind::Avr);
        let limit = match w.name() {
            "wrf" => 0.18,
            "kmeans" => 0.10,
            _ => 0.06,
        };
        assert!(
            m.output_error < limit,
            "{}: AVR output error {} over limit {limit}",
            w.name(),
            m.output_error
        );
    }
}

#[test]
fn compression_metrics_are_consistent() {
    for w in all_benchmarks(BenchScale::Tiny) {
        let m = run_on_design(w.as_ref(), &cfg(), DesignKind::Avr);
        assert!(
            (1.0..=16.0).contains(&m.compression_ratio),
            "{}: ratio {}",
            w.name(),
            m.compression_ratio
        );
        assert!(
            m.footprint_fraction > 0.0 && m.footprint_fraction <= 1.0 + 1e-9,
            "{}: footprint {}",
            w.name(),
            m.footprint_fraction
        );
        // Figure 14/15 breakdowns partition their totals.
        let r = m.counters.approx_requests;
        assert_eq!(r.total(), r.miss + r.uncompressed_hit + r.dbuf_hit + r.compressed_hit);
    }
}

#[test]
fn amat_orders_designs_sanely_on_memory_bound_work() {
    // On lbm (most memory-bound), AVR's AMAT must beat the baseline's.
    let suite = all_benchmarks(BenchScale::Tiny);
    let lbm = suite.iter().find(|w| w.name() == "lbm").unwrap();
    let base = run_on_design(lbm.as_ref(), &cfg(), DesignKind::Baseline);
    let avr = run_on_design(lbm.as_ref(), &cfg(), DesignKind::Avr);
    assert!(
        avr.counters.amat() < base.counters.amat(),
        "AVR AMAT {} vs baseline {}",
        avr.counters.amat(),
        base.counters.amat()
    );
}
