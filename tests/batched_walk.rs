//! The batched span-level timed walk vs. the retained per-word walk.
//!
//! `System` folds the guaranteed-L1-hit tail of every cacheline span into
//! closed-form core/cache/counter updates (`IntervalCore::
//! issue_complete_short_n`, `SetAssocCache::access_hit_n`). The contract
//! is **cycle-exactness**: the batched walk is a host-speed optimization
//! and must never change the simulation. This file pins default (batched)
//! runs bit-identical to `AVR_NO_BATCHED_WALK=1` (per-word) runs — every
//! counter, the traffic split, the energy breakdown and the application's
//! output bits — for all nine workloads. The CI matrix leg that runs the
//! whole suite under `AVR_NO_BATCHED_WALK=1` keeps the per-word reference
//! walk alive forever; this file keeps the two walks equal.

use avr::arch::{DesignKind, System, SystemConfig};
use avr::workloads::{all_benchmarks, BenchScale};

/// Run one workload twice — batched walk on and off — and require every
/// observable to match exactly.
fn assert_walks_identical(design: DesignKind) {
    let cfg = SystemConfig::tiny();
    for w in all_benchmarks(BenchScale::Tiny) {
        let mut batched_sys = System::new(cfg.clone(), design);
        batched_sys.set_batched_walk(true);
        let batched_out = w.run(&mut batched_sys);
        let batched = batched_sys.finish(w.name());

        let mut word_sys = System::new(cfg.clone(), design);
        word_sys.set_batched_walk(false);
        let word_out = w.run(&mut word_sys);
        let word = word_sys.finish(w.name());

        let ctx = format!("{} on {design:?}", w.name());
        assert_eq!(batched.cycles, word.cycles, "{ctx}: cycles");
        assert_eq!(batched.counters.instructions, word.counters.instructions, "{ctx}: instr");
        assert_eq!(batched.counters.loads, word.counters.loads, "{ctx}: loads");
        assert_eq!(batched.counters.stores, word.counters.stores, "{ctx}: stores");
        assert_eq!(batched.counters.l1_hits, word.counters.l1_hits, "{ctx}: L1 hits");
        assert_eq!(batched.counters.l2_hits, word.counters.l2_hits, "{ctx}: L2 hits");
        assert_eq!(
            batched.counters.llc_requests_total, word.counters.llc_requests_total,
            "{ctx}: LLC requests"
        );
        assert_eq!(
            batched.counters.llc_misses_total, word.counters.llc_misses_total,
            "{ctx}: LLC misses"
        );
        assert_eq!(batched.counters.traffic, word.counters.traffic, "{ctx}: traffic");
        assert_eq!(
            batched.counters.approx_requests, word.counters.approx_requests,
            "{ctx}: approx request breakdown"
        );
        assert_eq!(
            batched.counters.evictions, word.counters.evictions,
            "{ctx}: eviction breakdown"
        );
        assert_eq!(
            batched.counters.amat_cycles_sum, word.counters.amat_cycles_sum,
            "{ctx}: AMAT sum"
        );
        assert_eq!(batched.counters.amat_count, word.counters.amat_count, "{ctx}: AMAT count");
        assert_eq!(
            (batched.counters.miss_lat_sum, batched.counters.miss_lat_count),
            (word.counters.miss_lat_sum, word.counters.miss_lat_count),
            "{ctx}: miss-latency diagnostics"
        );
        assert_eq!(
            batched_sys.core_diag(),
            word_sys.core_diag(),
            "{ctx}: (leading, trailing, stalls)"
        );
        assert_eq!(batched_sys.l1_stats(), word_sys.l1_stats(), "{ctx}: L1 stats");
        assert_eq!(batched_sys.l2_stats(), word_sys.l2_stats(), "{ctx}: L2 stats");
        assert_eq!(batched.energy, word.energy, "{ctx}: energy breakdown");
        assert_eq!(batched.ipc.to_bits(), word.ipc.to_bits(), "{ctx}: IPC");
        assert_eq!(
            batched.compression_ratio.to_bits(),
            word.compression_ratio.to_bits(),
            "{ctx}: compression ratio"
        );
        assert_eq!(
            batched.footprint_fraction.to_bits(),
            word.footprint_fraction.to_bits(),
            "{ctx}: footprint"
        );
        assert_eq!(batched_out.len(), word_out.len(), "{ctx}: output shape");
        for (i, (a, b)) in batched_out.iter().zip(&word_out).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: output bit-diverges at {i}");
        }
    }
}

#[test]
fn batched_walk_is_cycle_exact_on_avr() {
    assert_walks_identical(DesignKind::Avr);
}

#[test]
fn batched_walk_is_cycle_exact_on_baseline() {
    assert_walks_identical(DesignKind::Baseline);
}

#[test]
fn batched_walk_is_cycle_exact_on_zero_avr() {
    assert_walks_identical(DesignKind::ZeroAvr);
}

#[test]
fn batched_walk_is_cycle_exact_on_truncate() {
    assert_walks_identical(DesignKind::Truncate);
}

#[test]
fn batched_walk_is_cycle_exact_on_doppelganger() {
    assert_walks_identical(DesignKind::Doppelganger);
}

/// The escape hatch is honored at construction: a default-constructed
/// `System` must agree with whatever `AVR_NO_BATCHED_WALK` says right
/// now. Read-only on the environment (mutating it mid-suite is a
/// `setenv`/`getenv` data race on glibc), this asserts the *enabled*
/// default on the normal CI legs and the *disabled* state on the
/// `test-perword` matrix leg — so both sides of the hatch are exercised
/// across the matrix.
#[test]
fn escape_hatch_env_is_honored_at_construction() {
    let disabled =
        matches!(std::env::var("AVR_NO_BATCHED_WALK"), Ok(v) if !v.is_empty() && v != "0");
    let sys = System::new(SystemConfig::tiny(), DesignKind::Avr);
    assert_eq!(
        sys.batched_walk(),
        !disabled,
        "System::new must follow AVR_NO_BATCHED_WALK (disabled={disabled})"
    );
}
