//! The whole simulator is deterministic: identical runs produce identical
//! cycle counts, traffic, and outputs — a property the figure benches and
//! EXPERIMENTS.md depend on.

use avr::arch::{DesignKind, SimPool, SystemConfig};
use avr::workloads::{all_benchmarks, run_grid, run_on_design, BenchScale};

#[test]
fn repeated_runs_are_bit_identical() {
    let cfg = SystemConfig::tiny();
    for w in all_benchmarks(BenchScale::Tiny) {
        // heat + kmeans cover the stencil and convergence-loop classes;
        // running all nine twice would double CI time for no extra signal.
        if !matches!(w.name(), "heat" | "kmeans") {
            continue;
        }
        for design in [DesignKind::Avr, DesignKind::Doppelganger, DesignKind::Truncate] {
            let a = run_on_design(w.as_ref(), &cfg, design);
            let b = run_on_design(w.as_ref(), &cfg, design);
            assert_eq!(a.cycles, b.cycles, "{} {:?} cycles differ", w.name(), design);
            assert_eq!(
                a.counters.traffic,
                b.counters.traffic,
                "{} {:?} traffic differs",
                w.name(),
                design
            );
            assert_eq!(
                a.output_error,
                b.output_error,
                "{} {:?} output error differs",
                w.name(),
                design
            );
            assert_eq!(a.counters.llc_misses_total, b.counters.llc_misses_total);
        }
    }
}

#[test]
fn pool_runs_are_bit_identical_to_single_threaded_for_every_workload() {
    // The SimPool engine's core contract: sharding the (workload × design)
    // grid across N workers changes nothing — not a cycle, not a byte of
    // traffic, not an output bit — for any of the nine workloads.
    let cfg = SystemConfig::tiny();
    let suite = all_benchmarks(BenchScale::Tiny);
    let designs = [DesignKind::Avr];
    let serial = run_grid(&SimPool::new(1), &suite, &cfg, &designs);
    for threads in [4, 9] {
        let pooled = run_grid(&SimPool::new(threads), &suite, &cfg, &designs);
        assert_eq!(pooled.len(), serial.len());
        for (a, b) in serial.iter().zip(&pooled) {
            assert_eq!(a.workload, b.workload, "{threads} threads reordered the grid");
            assert_eq!(a.design, b.design);
            let (ma, mb) = (&a.metrics, &b.metrics);
            assert_eq!(ma.cycles, mb.cycles, "{}: cycles differ", a.workload);
            assert_eq!(ma.counters.traffic, mb.counters.traffic, "{}: traffic", a.workload);
            assert_eq!(ma.counters.llc_misses_total, mb.counters.llc_misses_total);
            assert_eq!(ma.counters.instructions, mb.counters.instructions);
            assert_eq!(
                ma.output_error.to_bits(),
                mb.output_error.to_bits(),
                "{}: output error differs",
                a.workload
            );
            assert_eq!(
                ma.compression_ratio.to_bits(),
                mb.compression_ratio.to_bits(),
                "{}: compression summary differs",
                a.workload
            );
        }
    }
}

#[test]
fn parallel_compression_summary_is_thread_count_invariant() {
    // The Table 4 block scan partitions across workers; u64 byte totals
    // make the partition unobservable. Exercise it through a real system
    // run with summary_threads raised.
    let cfg = SystemConfig::tiny();
    let suite = all_benchmarks(BenchScale::Tiny);
    let w = suite.iter().find(|w| w.name() == "bscholes").unwrap();
    let run_with = |threads: usize| {
        let mut sys = avr::arch::System::new(cfg.clone(), DesignKind::Avr);
        sys.set_summary_threads(threads);
        let _ = w.run(&mut sys);
        let m = sys.finish(w.name());
        (m.compression_ratio, m.footprint_fraction)
    };
    let (r1, f1) = run_with(1);
    let (r4, f4) = run_with(4);
    assert_eq!(r1.to_bits(), r4.to_bits(), "ratio differs across summary widths");
    assert_eq!(f1.to_bits(), f4.to_bits(), "footprint differs across summary widths");
    assert!(r1 > 1.0, "bscholes must compress at tiny scale");
}

#[test]
fn design_does_not_perturb_instruction_stream_except_kmeans() {
    // All benchmarks but kmeans execute a fixed amount of work regardless
    // of approximation (paper §4.3); kmeans may converge differently.
    let cfg = SystemConfig::tiny();
    for w in all_benchmarks(BenchScale::Tiny) {
        if w.name() == "kmeans" {
            continue;
        }
        let base = run_on_design(w.as_ref(), &cfg, DesignKind::Baseline);
        let avr = run_on_design(w.as_ref(), &cfg, DesignKind::Avr);
        assert_eq!(
            base.counters.instructions,
            avr.counters.instructions,
            "{} instruction count must not depend on the design",
            w.name()
        );
    }
}
