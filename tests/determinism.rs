//! The whole simulator is deterministic: identical runs produce identical
//! cycle counts, traffic, and outputs — a property the figure benches and
//! EXPERIMENTS.md depend on.

use avr::arch::{DesignKind, SystemConfig};
use avr::workloads::{all_benchmarks, run_on_design, BenchScale};

#[test]
fn repeated_runs_are_bit_identical() {
    let cfg = SystemConfig::tiny();
    for w in all_benchmarks(BenchScale::Tiny) {
        // heat + kmeans cover the stencil and convergence-loop classes;
        // running all seven twice would double CI time for no extra signal.
        if !matches!(w.name(), "heat" | "kmeans") {
            continue;
        }
        for design in [DesignKind::Avr, DesignKind::Doppelganger, DesignKind::Truncate] {
            let a = run_on_design(w.as_ref(), &cfg, design);
            let b = run_on_design(w.as_ref(), &cfg, design);
            assert_eq!(a.cycles, b.cycles, "{} {:?} cycles differ", w.name(), design);
            assert_eq!(
                a.counters.traffic,
                b.counters.traffic,
                "{} {:?} traffic differs",
                w.name(),
                design
            );
            assert_eq!(
                a.output_error,
                b.output_error,
                "{} {:?} output error differs",
                w.name(),
                design
            );
            assert_eq!(a.counters.llc_misses_total, b.counters.llc_misses_total);
        }
    }
}

#[test]
fn design_does_not_perturb_instruction_stream_except_kmeans() {
    // All benchmarks but kmeans execute a fixed amount of work regardless
    // of approximation (paper §4.3); kmeans may converge differently.
    let cfg = SystemConfig::tiny();
    for w in all_benchmarks(BenchScale::Tiny) {
        if w.name() == "kmeans" {
            continue;
        }
        let base = run_on_design(w.as_ref(), &cfg, DesignKind::Baseline);
        let avr = run_on_design(w.as_ref(), &cfg, DesignKind::Avr);
        assert_eq!(
            base.counters.instructions,
            avr.counters.instructions,
            "{} instruction count must not depend on the design",
            w.name()
        );
    }
}
