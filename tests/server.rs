//! Loopback tests of the sweep server: the determinism contract (batch
//! results bit-identical to serial `run_grid_layouts` at any worker
//! width), reconnect replay, error handling, cancellation, and drain.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

use avr::arch::{DesignKind, LayoutKind, SimPool, SystemConfig};
use avr::server::{metrics_to_json, Client, Json, SweepServer};
use avr::types::{BackendKind, BenchScale, CellSpec};
use avr::workloads::{all_benchmarks, run_grid_layouts, GridRun};

/// The serial reference: `run_grid_layouts` on one worker, with the
/// backend pinned exact the way the wire layer pins it (`CellSpec::config`
/// defaults to exact so server results never depend on the server's own
/// `AVR_BACKEND` environment).
fn serial_reference(designs: &[DesignKind], layouts: &[LayoutKind]) -> Vec<GridRun> {
    let mut cfg = SystemConfig::tiny();
    cfg.error_model.backend = Some(BackendKind::Exact);
    let suite = all_benchmarks(BenchScale::Tiny);
    run_grid_layouts(&SimPool::new(1), &suite, &cfg, designs, layouts)
}

/// The same cells `run_grid_layouts` enumerates — workload-major,
/// layout-mid, design-minor, layouts intersected with each workload's
/// supported set — as wire specs.
fn grid_cells(designs: &[DesignKind], layouts: &[LayoutKind]) -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for w in all_benchmarks(BenchScale::Tiny) {
        for &layout in layouts.iter().filter(|l| w.layouts().contains(l)) {
            for &design in designs {
                let mut cell = CellSpec::new(w.name());
                cell.design = design;
                cell.layout = layout;
                cells.push(cell);
            }
        }
    }
    cells
}

/// Render a serial result the way the server renders it on the wire.
fn reference_line(run: &GridRun) -> String {
    metrics_to_json(&run.metrics).render()
}

#[test]
fn batches_are_bit_identical_to_serial_grid_runs_at_widths_1_and_4() {
    let designs = [DesignKind::Avr];
    let layouts = LayoutKind::ALL;
    let serial = serial_reference(&designs, &layouts);
    let cells = grid_cells(&designs, &layouts);
    assert_eq!(serial.len(), cells.len(), "cell enumeration must match the grid runner");

    for width in [1usize, 4] {
        let server = SweepServer::bind_with("127.0.0.1:0", SimPool::new(width)).unwrap();
        let (addr, handle) = server.spawn();
        let mut client = Client::connect(addr).unwrap();
        let job = client.submit(cells.clone()).unwrap();
        let outcome = client.collect_job(job).unwrap();
        assert_eq!(outcome.completed as usize, cells.len(), "width {width}");
        assert_eq!(outcome.cancelled, 0);
        for (i, run) in serial.iter().enumerate() {
            let event = outcome.results[i]
                .as_ref()
                .unwrap_or_else(|| panic!("width {width}: cell {i} ({}) missing", run.workload));
            assert_eq!(
                event.get("metrics").unwrap().render(),
                reference_line(run),
                "width {width}: cell {i} ({} {:?} {:?}) is not bit-identical",
                run.workload,
                run.design,
                run.layout,
            );
        }
        client.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }
}

#[test]
fn disconnect_mid_batch_then_reconnect_replays_the_full_stream() {
    let designs = [DesignKind::Baseline, DesignKind::Avr];
    let layouts = [LayoutKind::Soa];
    let serial = serial_reference(&designs, &layouts);
    let cells = grid_cells(&designs, &layouts);

    let server = SweepServer::bind_with("127.0.0.1:0", SimPool::new(1)).unwrap();
    let (addr, handle) = server.spawn();
    let job = {
        // Scope drop = abrupt disconnect after the first streamed result.
        let mut client = Client::connect(addr).unwrap();
        let job = client.submit(cells.clone()).unwrap();
        let first = client.next_event().unwrap();
        assert_eq!(first.get("event").and_then(Json::as_str), Some("result"));
        job
    };

    let mut client = Client::connect(addr).unwrap();
    let ack = client.results(job, 0).unwrap();
    assert_eq!(ack.get("cells").and_then(Json::as_u64), Some(cells.len() as u64));
    let outcome = client.collect_job(job).unwrap();
    assert_eq!(outcome.completed as usize, cells.len());
    for (i, run) in serial.iter().enumerate() {
        let event = outcome.results[i].as_ref().unwrap();
        assert_eq!(
            event.get("metrics").unwrap().render(),
            reference_line(run),
            "replayed cell {i} ({}) is not bit-identical",
            run.workload,
        );
    }

    // Resuming from a later cell replays only the tail.
    let from = cells.len() - 3;
    client.results(job, from).unwrap();
    let mut tail = Vec::new();
    loop {
        let event = client.next_event().unwrap();
        match event.get("event").and_then(Json::as_str) {
            Some("result") => tail.push(event.get("cell").and_then(Json::as_u64).unwrap()),
            Some("job_done") => break,
            other => panic!("unexpected event {other:?}"),
        }
    }
    assert_eq!(tail, (from as u64..cells.len() as u64).collect::<Vec<_>>());

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn malformed_and_invalid_requests_get_error_replies_without_wedging() {
    let server = SweepServer::bind_with("127.0.0.1:0", SimPool::new(1)).unwrap();
    let (addr, handle) = server.spawn();

    // Raw socket: drive the wire by hand.
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let send = |reader: &mut BufReader<TcpStream>, line: &str| {
        let mut w = &stream;
        w.write_all(line.as_bytes()).unwrap();
        w.write_all(b"\n").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        Json::parse(reply.trim()).unwrap()
    };

    for bad in [
        "this is not json",
        "{\"cells\":[]}",
        "{\"cmd\":\"fly\"}",
        "{\"cmd\":\"submit\",\"cells\":[{\"workload\":\"heat\",\"design\":\"warp\"}]}",
        "{\"cmd\":\"submit\",\"cells\":[{\"workload\":\"heat\",\"design\":\"memo\"}]}",
        "{\"cmd\":\"submit\",\"cells\":[{\"workload\":\"heat\",\"design\":\"memo_in\"}]}",
        "{\"cmd\":\"submit\",\"cells\":[{\"workload\":\"warp\"}]}",
        "{\"cmd\":\"submit\",\"cells\":[{\"workload\":\"heat\",\"layout\":\"partitioned\"}]}",
        "{\"cmd\":\"cancel\",\"job\":999}",
        "{\"cmd\":\"results\",\"job\":999}",
    ] {
        let reply = send(&mut reader, bad);
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false), "{bad}");
        assert!(reply.get("error").is_some(), "{bad}");
    }
    // The unknown-workload error names the registry.
    let reply = send(&mut reader, "{\"cmd\":\"submit\",\"cells\":[{\"workload\":\"warp\"}]}");
    assert!(reply.get("error").unwrap().as_str().unwrap().contains("heat"));
    // The unknown-design error names the offending label.
    let reply = send(
        &mut reader,
        "{\"cmd\":\"submit\",\"cells\":[{\"workload\":\"heat\",\"design\":\"memo\"}]}",
    );
    assert!(reply.get("error").unwrap().as_str().unwrap().contains("memo"));

    // The connection is still healthy: valid submits go through — including
    // the memoization designs under their real wire labels.
    for cells in [
        "[{\"workload\":\"heat\"}]",
        "[{\"workload\":\"heat\",\"design\":\"memoin\"},{\"workload\":\"heat\",\"design\":\"memoout\"}]",
    ] {
        let n = cells.matches("workload").count() as u64;
        let reply = send(&mut reader, &format!("{{\"cmd\":\"submit\",\"cells\":{cells}}}"));
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true), "{cells}");
        let job = reply.get("job").and_then(Json::as_u64).unwrap();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let event = Json::parse(line.trim()).unwrap();
            if event.get("event").and_then(Json::as_str) == Some("job_done") {
                assert_eq!(event.get("job").and_then(Json::as_u64), Some(job));
                assert_eq!(event.get("completed").and_then(Json::as_u64), Some(n));
                break;
            }
        }
    }

    let mut client = Client::connect(addr).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn cancel_mid_batch_keeps_finished_cells_and_skips_the_rest() {
    // Width 1 ⇒ cells execute one at a time, so a cancel sent right after
    // the first result leaves most of the batch unstarted.
    let server = SweepServer::bind_with("127.0.0.1:0", SimPool::new(1)).unwrap();
    let (addr, handle) = server.spawn();
    let mut client = Client::connect(addr).unwrap();

    let mut cells = Vec::new();
    for name in ["fft", "lattice", "lbm", "wrf"] {
        for design in DesignKind::ALL {
            let mut cell = CellSpec::new(name);
            cell.design = design;
            cells.push(cell);
        }
    }
    let n = cells.len();
    let job = client.submit(cells).unwrap();
    let first = client.next_event().unwrap();
    assert_eq!(first.get("event").and_then(Json::as_str), Some("result"));
    client.cancel(job).unwrap();
    let outcome = client.collect_job(job).unwrap();
    assert_eq!(outcome.completed + outcome.cancelled, n as u64, "every cell accounted for");
    assert!(outcome.completed >= 1, "the streamed cell must be kept");
    assert!(outcome.cancelled >= 1, "cancel right after the first of {n} cells must skip some");
    // A fresh replay serves exactly the kept cells (the first result was
    // consumed pre-cancel above, so count via re-subscription).
    client.results(job, 0).unwrap();
    let mut kept = 0u64;
    loop {
        let event = client.next_event().unwrap();
        match event.get("event").and_then(Json::as_str) {
            Some("result") => kept += 1,
            Some("job_done") => break,
            other => panic!("unexpected event {other:?}"),
        }
    }
    assert_eq!(kept, outcome.completed, "kept results match the completed count");

    // The job stays queryable after cancellation.
    let status = client.status().unwrap();
    let jobs = status.get("jobs").and_then(Json::as_arr).unwrap();
    let entry = jobs
        .iter()
        .find(|j| j.get("job").and_then(Json::as_u64) == Some(job))
        .expect("cancelled job still listed");
    assert_eq!(entry.get("state").and_then(Json::as_str), Some("done"));
    assert_eq!(entry.get("cancelled").and_then(Json::as_u64), Some(outcome.cancelled));

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn drain_finishes_queued_work_then_refuses_submissions_and_exits() {
    let server = SweepServer::bind_with("127.0.0.1:0", SimPool::new(2)).unwrap();
    let (addr, handle) = server.spawn();
    let mut submitter = Client::connect(addr).unwrap();

    let mut cells = Vec::new();
    for design in DesignKind::ALL {
        let mut cell = CellSpec::new("heat");
        cell.design = design;
        cells.push(cell);
    }
    let job = submitter.submit(cells.clone()).unwrap();

    // Drain from a second connection while the batch is in flight.
    let mut controller = Client::connect(addr).unwrap();
    let reply = controller.drain().unwrap();
    assert_eq!(reply.get("phase").and_then(Json::as_str), Some("draining"));
    let err = controller.submit(cells).unwrap_err();
    assert!(err.to_string().contains("draining"), "{err}");
    drop(controller);

    // The in-flight job still completes in full on the submitter's stream.
    let outcome = submitter.collect_job(job).unwrap();
    assert_eq!(outcome.completed, DesignKind::ALL.len() as u64);
    assert_eq!(outcome.cancelled, 0);
    drop(submitter);

    // The server exits once the queue is dry; new connections are refused.
    handle.join().unwrap().unwrap();
    for _ in 0..50 {
        if TcpStream::connect(addr).is_err() {
            return;
        }
        thread::sleep(Duration::from_millis(20));
    }
    panic!("listener still accepting after drain");
}

#[test]
fn golden_cache_amortizes_repeated_submissions() {
    if std::env::var_os("AVR_NO_GOLDEN_CACHE").is_some() {
        return; // cache disabled: nothing to amortize
    }
    let server = SweepServer::bind_with("127.0.0.1:0", SimPool::new(1)).unwrap();
    let (addr, handle) = server.spawn();
    let mut client = Client::connect(addr).unwrap();

    let batch = || {
        DesignKind::ALL
            .into_iter()
            .map(|d| {
                let mut c = CellSpec::new("kmeans");
                c.design = d;
                c
            })
            .collect::<Vec<_>>()
    };
    let job = client.submit(batch()).unwrap();
    client.collect_job(job).unwrap();
    let hits_before = golden_hits(&client.status().unwrap());
    let job = client.submit(batch()).unwrap();
    let outcome = client.collect_job(job).unwrap();
    let n = DesignKind::ALL.len() as u64;
    assert_eq!(outcome.completed, n);
    let hits_after = golden_hits(&client.status().unwrap());
    assert!(
        hits_after >= hits_before + n,
        "resubmitting {n} cells must hit the golden cache {n} more times ({hits_before} -> {hits_after})"
    );

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

fn golden_hits(status: &Json) -> u64 {
    status.get("golden").unwrap().get("hits").and_then(Json::as_u64).unwrap()
}
