//! The bulk `Vm` API's two contracts, pinned end-to-end:
//!
//! 1. **Determinism / bit-identity** — running a workload through the
//!    timed `System`'s bulk fast paths produces *exactly* the metrics
//!    (cycles, traffic, instructions, LLC misses) and *exactly* the output
//!    bits of the same workload forced through the trait's word-at-a-time
//!    default decompositions ([`WordAtATime`]), for **every workload ×
//!    every design**. The fast paths are a host-speed optimization, never
//!    a simulation change.
//!
//! 2. **Slice semantics** — partial, unaligned and cross-block bulk
//!    slices move exactly the words the equivalent per-word loop would,
//!    on both `System` and `ExactVm`, over randomized offset/length
//!    combinations.

use avr::arch::{DesignKind, ExactVm, System, SystemConfig, Vm, WordAtATime};
use avr::types::{DataType, PhysAddr};
use avr::workloads::{all_benchmarks, BenchScale};

mod common;
use common::Rng;

#[test]
fn bulk_fast_paths_match_word_at_a_time_for_every_workload_and_design() {
    let cfg = SystemConfig::tiny();
    for w in all_benchmarks(BenchScale::Tiny) {
        for design in DesignKind::ALL {
            let mut fast_sys = System::new(cfg.clone(), design);
            let fast_out = w.run(&mut fast_sys);
            let fast = fast_sys.finish(w.name());

            let mut word_sys = System::new(cfg.clone(), design);
            let word_out = w.run(&mut WordAtATime(&mut word_sys));
            let word = word_sys.finish(w.name());

            let ctx = format!("{} on {design:?}", w.name());
            assert_eq!(fast.cycles, word.cycles, "{ctx}: cycles");
            assert_eq!(fast.counters.traffic, word.counters.traffic, "{ctx}: traffic");
            assert_eq!(
                fast.counters.instructions, word.counters.instructions,
                "{ctx}: instructions"
            );
            assert_eq!(fast.counters.loads, word.counters.loads, "{ctx}: loads");
            assert_eq!(fast.counters.stores, word.counters.stores, "{ctx}: stores");
            assert_eq!(fast.counters.l1_hits, word.counters.l1_hits, "{ctx}: L1 hits");
            assert_eq!(fast.counters.l2_hits, word.counters.l2_hits, "{ctx}: L2 hits");
            assert_eq!(
                fast.counters.llc_misses_total, word.counters.llc_misses_total,
                "{ctx}: LLC misses"
            );
            // The batched span walk folds L1 hits into closed-form core
            // and recency updates; these pins are what make it an
            // *optimization* instead of a model change.
            assert_eq!(
                fast_sys.core_diag(),
                word_sys.core_diag(),
                "{ctx}: (leading, trailing, stall) misses"
            );
            assert_eq!(
                fast.counters.amat_cycles_sum, word.counters.amat_cycles_sum,
                "{ctx}: AMAT cycle sum"
            );
            assert_eq!(fast.counters.amat_count, word.counters.amat_count, "{ctx}: AMAT count");
            assert_eq!(fast_sys.l1_stats(), word_sys.l1_stats(), "{ctx}: L1 hit/miss/evictions");
            assert_eq!(fast_sys.l2_stats(), word_sys.l2_stats(), "{ctx}: L2 hit/miss/evictions");
            assert_eq!(
                fast.compression_ratio.to_bits(),
                word.compression_ratio.to_bits(),
                "{ctx}: compression summary"
            );
            assert_eq!(fast_out.len(), word_out.len(), "{ctx}: output shape");
            for (i, (a, b)) in fast_out.iter().zip(&word_out).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: output bit-diverges at {i}");
            }
        }
    }
}

#[test]
fn exact_vm_bulk_matches_word_at_a_time_for_every_workload() {
    for w in all_benchmarks(BenchScale::Tiny) {
        let mut fast_vm = ExactVm::new();
        let fast_out = w.run(&mut fast_vm);
        let mut word_vm = ExactVm::new();
        let word_out = w.run(&mut WordAtATime(&mut word_vm));
        assert_eq!(
            fast_vm.instructions,
            word_vm.instructions,
            "{}: golden instruction accounting diverged",
            w.name()
        );
        assert_eq!(fast_out.len(), word_out.len(), "{}: output shape", w.name());
        for (i, (a, b)) in fast_out.iter().zip(&word_out).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{}: golden output differs at {i}", w.name());
        }
    }
}

/// One randomized bulk call against its per-word equivalent on a pair of
/// identically driven VMs. Returns the words the call touched so the
/// caller can compare backing stores.
fn random_slice_case(rng: &mut Rng, region_words: usize) -> (usize, usize) {
    // Offsets and lengths chosen to hit line-interior starts, line
    // crossings and 1 KB block crossings.
    let off = (rng.next_u64() as usize) % (region_words - 1);
    let max_len = (region_words - off).min(3000);
    let len = 1 + (rng.next_u64() as usize) % max_len;
    (off, len)
}

#[test]
fn partial_unaligned_and_cross_block_slices_match_per_word_loops_on_system() {
    let mut rng = Rng(0xB01D_FACE);
    let cfg = SystemConfig::tiny();
    for design in [DesignKind::Avr, DesignKind::Truncate, DesignKind::Baseline] {
        let mut fast = System::new(cfg.clone(), design);
        let mut word = System::new(cfg.clone(), design);
        let region_words = (96 << 10) / 4;
        let fast_base = fast.approx_malloc(96 << 10, DataType::F32).base;
        let word_base = word.approx_malloc(96 << 10, DataType::F32).base;
        assert_eq!(fast_base, word_base);

        let mut buf_a = vec![0f32; 3000];
        let mut buf_b = vec![0f32; 3000];
        for case in 0..90 {
            let (off, len) = random_slice_case(&mut rng, region_words);
            let addr = PhysAddr(fast_base.0 + 4 * off as u64);
            match case % 6 {
                0 => {
                    let vals: Vec<f32> =
                        (0..len).map(|k| 50.0 + (off + k) as f32 * 0.003).collect();
                    fast.write_f32s(addr, &vals);
                    WordAtATime(&mut word).write_f32s(addr, &vals);
                }
                1 => {
                    fast.read_f32s(addr, &mut buf_a[..len]);
                    WordAtATime(&mut word).read_f32s(addr, &mut buf_b[..len]);
                    for (a, b) in buf_a[..len].iter().zip(&buf_b[..len]) {
                        assert_eq!(a.to_bits(), b.to_bits(), "read_f32s values diverge");
                    }
                }
                2 => {
                    fast.for_each_f32_mut(addr, len, 2, &mut |k, v| v * 0.5 + k as f32);
                    WordAtATime(&mut word)
                        .for_each_f32_mut(addr, len, 2, &mut |k, v| v * 0.5 + k as f32);
                }
                3 => {
                    // Strided walk: strides 0..160 B cover same-line runs,
                    // line-interior hops and line/block crossings.
                    let stride = 4 * (rng.next_u64() % 41);
                    let count = len.min(500);
                    fast.read_f32s_strided(addr, stride, &mut buf_a[..count]);
                    WordAtATime(&mut word).read_f32s_strided(addr, stride, &mut buf_b[..count]);
                    for (a, b) in buf_a[..count].iter().zip(&buf_b[..count]) {
                        assert_eq!(a.to_bits(), b.to_bits(), "strided values diverge");
                    }
                }
                4 => {
                    // Gather/scatter over clustered indices with repeats:
                    // long same-line runs with duplicate elements inside.
                    let count = len.min(400);
                    let idx: Vec<u32> = (0..count)
                        .map(|k| {
                            let cluster = (k / 7) * 5;
                            (cluster + (rng.next_u64() as usize % 3)) as u32 % region_words as u32
                        })
                        .collect();
                    let vals: Vec<f32> = (0..count).map(|k| -4.0 + (k as f32) * 0.125).collect();
                    fast.write_f32s_scatter(addr, &idx, &vals);
                    WordAtATime(&mut word).write_f32s_scatter(addr, &idx, &vals);
                    fast.read_f32s_gather(addr, &idx, &mut buf_a[..count]);
                    WordAtATime(&mut word).read_f32s_gather(addr, &idx, &mut buf_b[..count]);
                    for (a, b) in buf_a[..count].iter().zip(&buf_b[..count]) {
                        assert_eq!(a.to_bits(), b.to_bits(), "gather values diverge");
                    }
                }
                _ => {
                    // Integer aliases: u32 and the bit-pattern-identical
                    // i32 view over the same bytes.
                    let count = len.min(800);
                    let words: Vec<u32> =
                        (0..count).map(|k| (off + k) as u32 * 0x9E37 + 11).collect();
                    fast.write_u32s(addr, &words);
                    WordAtATime(&mut word).write_u32s(addr, &words);
                    let mut ia = vec![0i32; count];
                    let mut ib = vec![0i32; count];
                    fast.read_i32s(addr, &mut ia);
                    WordAtATime(&mut word).read_i32s(addr, &mut ib);
                    assert_eq!(ia, ib, "read_i32s values diverge");
                    let ivals: Vec<i32> = words.iter().map(|w| !w as i32).collect();
                    fast.write_i32s(addr, &ivals);
                    WordAtATime(&mut word).write_i32s(addr, &ivals);
                }
            }
            assert_eq!(
                fast.counters.amat_cycles_sum, word.counters.amat_cycles_sum,
                "{design:?} case {case}: access latencies"
            );
            assert_eq!(
                fast.counters.traffic, word.counters.traffic,
                "{design:?} case {case}: traffic"
            );
            assert_eq!(
                fast.core_diag(),
                word.core_diag(),
                "{design:?} case {case}: core diagnostics"
            );
        }
        // Full backing-store sweep at the end.
        for k in 0..region_words as u64 {
            let a = PhysAddr(fast_base.0 + 4 * k);
            assert_eq!(fast.mem.read_u32(a), word.mem.read_u32(a), "{design:?}: mem at {a:?}");
        }
        let fm = fast.finish("slices");
        let wm = word.finish("slices");
        assert_eq!(fm.cycles, wm.cycles, "{design:?}: final cycles");
        assert_eq!(fm.counters.instructions, wm.counters.instructions, "{design:?}: instructions");
    }
}

/// Hand-picked adversarial spans for the batched hit walk: every shape
/// where "the rest of the span is a guaranteed L1 hit" could plausibly go
/// wrong — single words, exact-line spans, line-straddling unaligned
/// spans, same-line gathers with duplicates, stride-0 broadcasts and
/// sub-line strides whose runs end exactly at a line boundary.
#[test]
fn adversarial_same_line_cross_line_and_unaligned_spans_match_per_word() {
    let cfg = SystemConfig::tiny();
    for design in DesignKind::ALL {
        let mut fast = System::new(cfg.clone(), design);
        let mut word = System::new(cfg.clone(), design);
        let base = fast.approx_malloc(32 << 10, DataType::F32).base;
        assert_eq!(base, word.approx_malloc(32 << 10, DataType::F32).base);

        let drive = |vm: &mut dyn Vm| {
            let one = [1.5f32];
            vm.write_f32s(base, &one); // 1-word span
            let line16: Vec<f32> = (0..16).map(|k| k as f32).collect();
            vm.write_f32s(base, &line16); // exactly one line
            let vals30: Vec<f32> = (0..30).map(|k| 0.5 * k as f32).collect();
            vm.write_f32s(PhysAddr(base.0 + 4 * 13), &vals30); // 3-13-14 split
            let mut buf = vec![0f32; 33];
            vm.read_f32s(PhysAddr(base.0 + 60), &mut buf); // last word of a line first
                                                           // Same-line gather with duplicates (runs of length idx.len()).
            let idx = [5u32, 5, 6, 5, 7, 7, 5, 6];
            let mut g = [0f32; 8];
            vm.read_f32s_gather(base, &idx, &mut g);
            vm.write_f32s_scatter(base, &idx, &g);
            // Stride 0: every element is the same word.
            let mut bcast = [0f32; 40];
            vm.read_f32s_strided(PhysAddr(base.0 + 8), 0, &mut bcast);
            // Stride 8 B from mid-line: runs end exactly at line boundaries.
            let mut hop = [0f32; 64];
            vm.read_f32s_strided(PhysAddr(base.0 + 32), 8, &mut hop);
            // for_each over a line-interior window.
            vm.for_each_f32_mut(PhysAddr(base.0 + 4 * 7), 21, 3, &mut |k, v| v + k as f32);
        };
        drive(&mut fast);
        drive(&mut WordAtATime(&mut word));

        assert_eq!(fast.core_diag(), word.core_diag(), "{design:?}: core diagnostics");
        let fm = fast.finish("adversarial");
        let wm = word.finish("adversarial");
        assert_eq!(fm.cycles, wm.cycles, "{design:?}: cycles");
        assert_eq!(fm.counters.loads, wm.counters.loads, "{design:?}: loads");
        assert_eq!(fm.counters.stores, wm.counters.stores, "{design:?}: stores");
        assert_eq!(fm.counters.l1_hits, wm.counters.l1_hits, "{design:?}: L1 hits");
        assert_eq!(
            fm.counters.amat_cycles_sum, wm.counters.amat_cycles_sum,
            "{design:?}: AMAT sum"
        );
        assert_eq!(fm.counters.amat_count, wm.counters.amat_count, "{design:?}: AMAT count");
        assert_eq!(fast.l1_stats(), word.l1_stats(), "{design:?}: L1 stats");
        for k in 0..(32 << 10) / 4u64 {
            let a = PhysAddr(base.0 + 4 * k);
            assert_eq!(fast.mem.read_u32(a), word.mem.read_u32(a), "{design:?}: mem at {a:?}");
        }
    }
}

#[test]
fn partial_unaligned_and_cross_block_slices_match_per_word_loops_on_exact_vm() {
    let mut rng = Rng(0xFEED_5EED);
    let mut fast = ExactVm::new();
    let mut word = ExactVm::new();
    let region_words = (64 << 10) / 4;
    let base = fast.approx_malloc(64 << 10, DataType::F32).base;
    assert_eq!(base, word.approx_malloc(64 << 10, DataType::F32).base);

    let mut buf_a = vec![0f32; 3000];
    let mut buf_b = vec![0f32; 3000];
    for case in 0..80 {
        let (off, len) = random_slice_case(&mut rng, region_words);
        let addr = PhysAddr(base.0 + 4 * off as u64);
        match case % 3 {
            0 => {
                let vals: Vec<f32> = (0..len).map(|k| (off * 7 + k) as f32 * 0.01).collect();
                fast.write_f32s(addr, &vals);
                WordAtATime(&mut word).write_f32s(addr, &vals);
            }
            1 => {
                fast.read_f32s(addr, &mut buf_a[..len]);
                WordAtATime(&mut word).read_f32s(addr, &mut buf_b[..len]);
                assert_eq!(buf_a[..len], buf_b[..len]);
            }
            _ => {
                fast.for_each_f32_mut(addr, len, 1, &mut |k, v| v + (k % 13) as f32);
                WordAtATime(&mut word)
                    .for_each_f32_mut(addr, len, 1, &mut |k, v| v + (k % 13) as f32);
            }
        }
        assert_eq!(fast.instructions, word.instructions, "case {case}: instructions");
    }
    // The i32 aliases on ExactVm: bit-pattern identical to the u32 view.
    let ivals: Vec<i32> = (0..500).map(|k| k * 7919 - 250_000).collect();
    fast.write_i32s(PhysAddr(base.0 + 12), &ivals);
    WordAtATime(&mut word).write_i32s(PhysAddr(base.0 + 12), &ivals);
    let mut ia = vec![0i32; 500];
    let mut ib = vec![0i32; 500];
    fast.read_i32s(PhysAddr(base.0 + 12), &mut ia);
    WordAtATime(&mut word).read_i32s(PhysAddr(base.0 + 12), &mut ib);
    assert_eq!(ia, ivals);
    assert_eq!(ib, ivals);
    assert_eq!(fast.instructions, word.instructions, "i32 alias instructions");
    for k in 0..region_words as u64 {
        let a = PhysAddr(base.0 + 4 * k);
        assert_eq!(fast.mem.read_u32(a), word.mem.read_u32(a), "mem at {a:?}");
    }
}
