//! The bulk `Vm` API's two contracts, pinned end-to-end:
//!
//! 1. **Determinism / bit-identity** — running a workload through the
//!    timed `System`'s bulk fast paths produces *exactly* the metrics
//!    (cycles, traffic, instructions, LLC misses) and *exactly* the output
//!    bits of the same workload forced through the trait's word-at-a-time
//!    default decompositions ([`WordAtATime`]), for **every workload ×
//!    every design**. The fast paths are a host-speed optimization, never
//!    a simulation change.
//!
//! 2. **Slice semantics** — partial, unaligned and cross-block bulk
//!    slices move exactly the words the equivalent per-word loop would,
//!    on both `System` and `ExactVm`, over randomized offset/length
//!    combinations.

use avr::arch::{DesignKind, ExactVm, System, SystemConfig, Vm, WordAtATime};
use avr::types::{DataType, PhysAddr};
use avr::workloads::{all_benchmarks, BenchScale};

mod common;
use common::Rng;

#[test]
fn bulk_fast_paths_match_word_at_a_time_for_every_workload_and_design() {
    let cfg = SystemConfig::tiny();
    for w in all_benchmarks(BenchScale::Tiny) {
        for design in DesignKind::ALL {
            let mut fast_sys = System::new(cfg.clone(), design);
            let fast_out = w.run(&mut fast_sys);
            let fast = fast_sys.finish(w.name());

            let mut word_sys = System::new(cfg.clone(), design);
            let word_out = w.run(&mut WordAtATime(&mut word_sys));
            let word = word_sys.finish(w.name());

            let ctx = format!("{} on {design:?}", w.name());
            assert_eq!(fast.cycles, word.cycles, "{ctx}: cycles");
            assert_eq!(fast.counters.traffic, word.counters.traffic, "{ctx}: traffic");
            assert_eq!(
                fast.counters.instructions, word.counters.instructions,
                "{ctx}: instructions"
            );
            assert_eq!(fast.counters.loads, word.counters.loads, "{ctx}: loads");
            assert_eq!(fast.counters.stores, word.counters.stores, "{ctx}: stores");
            assert_eq!(fast.counters.l1_hits, word.counters.l1_hits, "{ctx}: L1 hits");
            assert_eq!(fast.counters.l2_hits, word.counters.l2_hits, "{ctx}: L2 hits");
            assert_eq!(
                fast.counters.llc_misses_total, word.counters.llc_misses_total,
                "{ctx}: LLC misses"
            );
            assert_eq!(
                fast.compression_ratio.to_bits(),
                word.compression_ratio.to_bits(),
                "{ctx}: compression summary"
            );
            assert_eq!(fast_out.len(), word_out.len(), "{ctx}: output shape");
            for (i, (a, b)) in fast_out.iter().zip(&word_out).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: output bit-diverges at {i}");
            }
        }
    }
}

#[test]
fn exact_vm_bulk_matches_word_at_a_time_for_every_workload() {
    for w in all_benchmarks(BenchScale::Tiny) {
        let mut fast_vm = ExactVm::new();
        let fast_out = w.run(&mut fast_vm);
        let mut word_vm = ExactVm::new();
        let word_out = w.run(&mut WordAtATime(&mut word_vm));
        assert_eq!(
            fast_vm.instructions,
            word_vm.instructions,
            "{}: golden instruction accounting diverged",
            w.name()
        );
        assert_eq!(fast_out.len(), word_out.len(), "{}: output shape", w.name());
        for (i, (a, b)) in fast_out.iter().zip(&word_out).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{}: golden output differs at {i}", w.name());
        }
    }
}

/// One randomized bulk call against its per-word equivalent on a pair of
/// identically driven VMs. Returns the words the call touched so the
/// caller can compare backing stores.
fn random_slice_case(rng: &mut Rng, region_words: usize) -> (usize, usize) {
    // Offsets and lengths chosen to hit line-interior starts, line
    // crossings and 1 KB block crossings.
    let off = (rng.next_u64() as usize) % (region_words - 1);
    let max_len = (region_words - off).min(3000);
    let len = 1 + (rng.next_u64() as usize) % max_len;
    (off, len)
}

#[test]
fn partial_unaligned_and_cross_block_slices_match_per_word_loops_on_system() {
    let mut rng = Rng(0xB01D_FACE);
    let cfg = SystemConfig::tiny();
    for design in [DesignKind::Avr, DesignKind::Truncate, DesignKind::Baseline] {
        let mut fast = System::new(cfg.clone(), design);
        let mut word = System::new(cfg.clone(), design);
        let region_words = (96 << 10) / 4;
        let fast_base = fast.approx_malloc(96 << 10, DataType::F32).base;
        let word_base = word.approx_malloc(96 << 10, DataType::F32).base;
        assert_eq!(fast_base, word_base);

        let mut buf_a = vec![0f32; 3000];
        let mut buf_b = vec![0f32; 3000];
        for case in 0..60 {
            let (off, len) = random_slice_case(&mut rng, region_words);
            let addr = PhysAddr(fast_base.0 + 4 * off as u64);
            match case % 4 {
                0 => {
                    let vals: Vec<f32> =
                        (0..len).map(|k| 50.0 + (off + k) as f32 * 0.003).collect();
                    fast.write_f32s(addr, &vals);
                    WordAtATime(&mut word).write_f32s(addr, &vals);
                }
                1 => {
                    fast.read_f32s(addr, &mut buf_a[..len]);
                    WordAtATime(&mut word).read_f32s(addr, &mut buf_b[..len]);
                    for (a, b) in buf_a[..len].iter().zip(&buf_b[..len]) {
                        assert_eq!(a.to_bits(), b.to_bits(), "read_f32s values diverge");
                    }
                }
                2 => {
                    fast.for_each_f32_mut(addr, len, 2, &mut |k, v| v * 0.5 + k as f32);
                    WordAtATime(&mut word)
                        .for_each_f32_mut(addr, len, 2, &mut |k, v| v * 0.5 + k as f32);
                }
                _ => {
                    // Strided walk crossing lines and blocks.
                    let stride = 4 * (1 + (rng.next_u64() % 40));
                    let count = len.min(500);
                    fast.read_f32s_strided(addr, stride, &mut buf_a[..count]);
                    WordAtATime(&mut word).read_f32s_strided(addr, stride, &mut buf_b[..count]);
                    for (a, b) in buf_a[..count].iter().zip(&buf_b[..count]) {
                        assert_eq!(a.to_bits(), b.to_bits(), "strided values diverge");
                    }
                }
            }
            assert_eq!(
                fast.counters.amat_cycles_sum, word.counters.amat_cycles_sum,
                "{design:?} case {case}: access latencies"
            );
            assert_eq!(
                fast.counters.traffic, word.counters.traffic,
                "{design:?} case {case}: traffic"
            );
        }
        // Full backing-store sweep at the end.
        for k in 0..region_words as u64 {
            let a = PhysAddr(fast_base.0 + 4 * k);
            assert_eq!(fast.mem.read_u32(a), word.mem.read_u32(a), "{design:?}: mem at {a:?}");
        }
        let fm = fast.finish("slices");
        let wm = word.finish("slices");
        assert_eq!(fm.cycles, wm.cycles, "{design:?}: final cycles");
        assert_eq!(fm.counters.instructions, wm.counters.instructions, "{design:?}: instructions");
    }
}

#[test]
fn partial_unaligned_and_cross_block_slices_match_per_word_loops_on_exact_vm() {
    let mut rng = Rng(0xFEED_5EED);
    let mut fast = ExactVm::new();
    let mut word = ExactVm::new();
    let region_words = (64 << 10) / 4;
    let base = fast.approx_malloc(64 << 10, DataType::F32).base;
    assert_eq!(base, word.approx_malloc(64 << 10, DataType::F32).base);

    let mut buf_a = vec![0f32; 3000];
    let mut buf_b = vec![0f32; 3000];
    for case in 0..80 {
        let (off, len) = random_slice_case(&mut rng, region_words);
        let addr = PhysAddr(base.0 + 4 * off as u64);
        match case % 3 {
            0 => {
                let vals: Vec<f32> = (0..len).map(|k| (off * 7 + k) as f32 * 0.01).collect();
                fast.write_f32s(addr, &vals);
                WordAtATime(&mut word).write_f32s(addr, &vals);
            }
            1 => {
                fast.read_f32s(addr, &mut buf_a[..len]);
                WordAtATime(&mut word).read_f32s(addr, &mut buf_b[..len]);
                assert_eq!(buf_a[..len], buf_b[..len]);
            }
            _ => {
                fast.for_each_f32_mut(addr, len, 1, &mut |k, v| v + (k % 13) as f32);
                WordAtATime(&mut word)
                    .for_each_f32_mut(addr, len, 1, &mut |k, v| v + (k % 13) as f32);
            }
        }
        assert_eq!(fast.instructions, word.instructions, "case {case}: instructions");
    }
    for k in 0..region_words as u64 {
        let a = PhysAddr(base.0 + 4 * k);
        assert_eq!(fast.mem.read_u32(a), word.mem.read_u32(a), "mem at {a:?}");
    }
}
