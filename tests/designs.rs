//! The design axis behind `DesignPolicy` (PR 10): bit-identity pins for
//! every design, thread-width invariance for the memoization family, and
//! the memo designs' effectiveness/accuracy contract.
//!
//! The five legacy-design digests were captured with
//! `avr-bench/src/bin/design_digest.rs` on the tree *before* the policy
//! extraction — the trait refactor had to reproduce every counter and
//! every output bit of the old hard-wired dispatch. The memo-design
//! digests pin the new designs' determinism across the CI legs (scalar
//! codec kernels, per-word walk, pooled runs): any divergence between
//! legs shows up as a digest mismatch.

use avr::arch::{BackendKind, DesignKind, LayoutKind, SimPool, SystemConfig};
use avr::workloads::{all_benchmarks, metrics_digest, run_grid, run_on_design_in, BenchScale};

/// Captured by `design_digest` (see module docs): tiny scale, SoA layout,
/// exact backend, one thread.
const DIGESTS: &[(&str, DesignKind, u64)] = &[
    ("heat", DesignKind::Baseline, 0xb517941192a75eff),
    ("heat", DesignKind::Doppelganger, 0x9fab6d762c4b7d8b),
    ("heat", DesignKind::Truncate, 0xbcb07c896a7fb2b4),
    ("heat", DesignKind::ZeroAvr, 0x0dba67a923f5eb7a),
    ("heat", DesignKind::Avr, 0xbc691077278f012f),
    ("heat", DesignKind::MemoIn, 0x1885fe4adbab3979),
    ("heat", DesignKind::MemoOut, 0x0e81bd391d56ecd6),
    ("lattice", DesignKind::Baseline, 0x4138d11a809064ad),
    ("lattice", DesignKind::Doppelganger, 0x38dda8dc30ecaf1b),
    ("lattice", DesignKind::Truncate, 0x04e6d19e106f5149),
    ("lattice", DesignKind::ZeroAvr, 0x9a520dedcd0c9dd1),
    ("lattice", DesignKind::Avr, 0x0d637993b2d2b084),
    ("lattice", DesignKind::MemoIn, 0x77447f98f968f0dc),
    ("lattice", DesignKind::MemoOut, 0x730ba59f16c31dcb),
    ("lbm", DesignKind::Baseline, 0x0c722986d36b128c),
    ("lbm", DesignKind::Doppelganger, 0x668751b42c63fb02),
    ("lbm", DesignKind::Truncate, 0x63d8faa433231804),
    ("lbm", DesignKind::ZeroAvr, 0x927ff0d484a4b875),
    ("lbm", DesignKind::Avr, 0x954cb6546eaec9b8),
    ("lbm", DesignKind::MemoIn, 0xf30ff7302d4e5704),
    ("lbm", DesignKind::MemoOut, 0x2b8aa9b9d4bf1022),
    ("orbit", DesignKind::Baseline, 0xccf3a28c7d421c00),
    ("orbit", DesignKind::Doppelganger, 0x0c8fa2893611299e),
    ("orbit", DesignKind::Truncate, 0xcb7b5c6b861a1e9c),
    ("orbit", DesignKind::ZeroAvr, 0x21b9400231cc57f4),
    ("orbit", DesignKind::Avr, 0x7c71eeba1c97bfa1),
    ("orbit", DesignKind::MemoIn, 0xfb00f1a55d80f8fa),
    ("orbit", DesignKind::MemoOut, 0x73c386e25536cceb),
    ("kmeans", DesignKind::Baseline, 0xb5186e4dc840a9b5),
    ("kmeans", DesignKind::Doppelganger, 0x5bb228f7b7d7f129),
    ("kmeans", DesignKind::Truncate, 0xb461e97f18a7047e),
    ("kmeans", DesignKind::ZeroAvr, 0xf9b28d5fc989cd55),
    ("kmeans", DesignKind::Avr, 0xe328f7762d7d2212),
    ("kmeans", DesignKind::MemoIn, 0x1a51a4bcd0b7e037),
    ("kmeans", DesignKind::MemoOut, 0x1a51a4bcd0b7e037),
    ("bscholes", DesignKind::Baseline, 0xa75736e4e57f80f2),
    ("bscholes", DesignKind::Doppelganger, 0xb7408ecb1d77bc1b),
    ("bscholes", DesignKind::Truncate, 0x0b65f49ae063c09d),
    ("bscholes", DesignKind::ZeroAvr, 0xa3deb7c27e9917ae),
    ("bscholes", DesignKind::Avr, 0xd29ce4af2503b0a0),
    ("bscholes", DesignKind::MemoIn, 0x1ebb78a3cc6d93d4),
    ("bscholes", DesignKind::MemoOut, 0x7dd4ffc29e627e4f),
    ("wrf", DesignKind::Baseline, 0x2c32501d2246024b),
    ("wrf", DesignKind::Doppelganger, 0x452252e61f21c2e6),
    ("wrf", DesignKind::Truncate, 0x282b06a7251c1fe5),
    ("wrf", DesignKind::ZeroAvr, 0xa1e496e02b816575),
    ("wrf", DesignKind::Avr, 0xf294481d4739b70a),
    ("wrf", DesignKind::MemoIn, 0xabbe383135206fc3),
    ("wrf", DesignKind::MemoOut, 0x6c15a18298cb4c3a),
    ("sobel", DesignKind::Baseline, 0x4753380481604205),
    ("sobel", DesignKind::Doppelganger, 0xd58744335eebebdd),
    ("sobel", DesignKind::Truncate, 0x8980d4b180a5885a),
    ("sobel", DesignKind::ZeroAvr, 0x8b3e08df35255fbd),
    ("sobel", DesignKind::Avr, 0x13433c569c76b836),
    ("sobel", DesignKind::MemoIn, 0xdee2b7853a439376),
    ("sobel", DesignKind::MemoOut, 0x1f90a25b409ac3e3),
    ("fft", DesignKind::Baseline, 0xcc3b72253d60d369),
    ("fft", DesignKind::Doppelganger, 0xb2ee0ca9b1eceb9e),
    ("fft", DesignKind::Truncate, 0x927f99ea06dc559a),
    ("fft", DesignKind::ZeroAvr, 0x941e420fcc62ffa0),
    ("fft", DesignKind::Avr, 0xc442c47742383973),
    ("fft", DesignKind::MemoIn, 0x0c1cff3a199c2d95),
    ("fft", DesignKind::MemoOut, 0x0606e1509badcd25),
    ("particles", DesignKind::Baseline, 0xa6d43dfe9b5bcd32),
    ("particles", DesignKind::Doppelganger, 0x3855f130c51d7f4a),
    ("particles", DesignKind::Truncate, 0x91858434cd643243),
    ("particles", DesignKind::ZeroAvr, 0xda8e1f9102086ec7),
    ("particles", DesignKind::Avr, 0xfe1a0c5b9c444986),
    ("particles", DesignKind::MemoIn, 0x8a028afbf5b5dd32),
    ("particles", DesignKind::MemoOut, 0x7e7f6a8bd945a5a7),
];

fn exact_tiny() -> SystemConfig {
    SystemConfig::tiny().with_backend(BackendKind::Exact)
}

/// Every (workload × design) digest matches its pin: the legacy designs
/// are bit-identical to the pre-extraction dispatch, the memo designs are
/// frozen across all CI legs.
#[test]
fn design_digests_match_pins() {
    let cfg = exact_tiny();
    let mut checked = 0;
    for w in all_benchmarks(BenchScale::Tiny) {
        for design in DesignKind::ALL {
            let pin = DIGESTS
                .iter()
                .find(|(n, d, _)| *n == w.name() && *d == design)
                .unwrap_or_else(|| panic!("no pin for {} {design:?}", w.name()))
                .2;
            let m = run_on_design_in(w.as_ref(), &cfg, design, LayoutKind::Soa);
            let got = metrics_digest(&m);
            assert_eq!(
                got,
                pin,
                "{} {design:?}: digest 0x{got:016x} != pinned 0x{pin:016x}",
                w.name()
            );
            checked += 1;
        }
    }
    assert_eq!(checked, DIGESTS.len(), "every pin exercised");
}

/// The memo designs' table/window state is per-`System` and content-
/// driven: pooled grid runs are bit-identical on every counter (including
/// the memo breakdown) at widths 1 and 4.
#[test]
fn memo_designs_are_thread_width_invariant() {
    let cfg = exact_tiny();
    let designs = [DesignKind::MemoIn, DesignKind::MemoOut];
    let serial = run_grid(&SimPool::new(1), &all_benchmarks(BenchScale::Tiny), &cfg, &designs);
    let pooled = run_grid(&SimPool::new(4), &all_benchmarks(BenchScale::Tiny), &cfg, &designs);
    assert_eq!(serial.len(), pooled.len());
    for (a, b) in serial.iter().zip(pooled.iter()) {
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.design, b.design);
        let tag = format!("{} {:?}", a.workload, a.design);
        assert_eq!(a.metrics.cycles, b.metrics.cycles, "{tag}: cycles");
        assert_eq!(a.metrics.counters, b.metrics.counters, "{tag}: counters (incl. memo)");
        assert_eq!(
            a.metrics.output_error.to_bits(),
            b.metrics.output_error.to_bits(),
            "{tag}: output error"
        );
    }
}

/// The memo designs actually memoize — table/window hits on a meaningful
/// share of the suite — while output error stays in Table-3-style bands.
#[test]
fn memo_designs_hit_and_stay_accurate() {
    let cfg = exact_tiny();
    for design in [DesignKind::MemoIn, DesignKind::MemoOut] {
        let mut hitting = Vec::new();
        let mut errors = Vec::new();
        for w in all_benchmarks(BenchScale::Tiny) {
            let m = run_on_design_in(w.as_ref(), &cfg, design, LayoutKind::Soa);
            let memo = m.counters.memo;
            if memo.any_hits() {
                hitting.push(w.name());
            }
            assert!(
                m.output_error.is_finite(),
                "{} {design:?}: output error {}",
                w.name(),
                m.output_error
            );
            errors.push(m.output_error);
        }
        assert!(
            hitting.len() >= 3,
            "{design:?} must memoize on at least 3 workloads, hit on {hitting:?}"
        );
        let mean = errors.iter().sum::<f64>() / errors.len() as f64;
        assert!(
            mean < 0.05,
            "{design:?}: mean output error {mean} outside the Table-3 band (errors {errors:?})"
        );
        for (e, w) in errors.iter().zip(all_benchmarks(BenchScale::Tiny)) {
            assert!(*e < 0.5, "{design:?} {}: per-workload output error {e} is runaway", w.name());
        }
    }
}
