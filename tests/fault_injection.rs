//! Robustness harness for the pluggable device error model: fault
//! injection must be deterministic (bit-identical at any SimPool thread
//! width), must respect criticality (designs that don't honor the approx
//! annotation never see a flipped bit), and must degrade gracefully —a
//! hostile fault rate exhausts the retry budget into a flagged-but-finite
//! run, never a panic or a poisoned NaN cascade.

use avr::arch::{
    BackendKind, DesignKind, FieldSpec, Layout, LayoutKind, RecordSchema, SimPool, System,
    SystemConfig,
};
use avr::workloads::{all_benchmarks, run_grid, run_on_design, BenchScale};

/// Fault rates high enough that every workload sees injected flips at
/// tiny scale, low enough that the runs stay sane.
fn faulty_cfg(kind: BackendKind) -> SystemConfig {
    let mut cfg = SystemConfig::tiny().with_backend(kind);
    cfg.error_model.retention_fail_per_bit = 1e-5;
    cfg.error_model.mram_p01 = 1e-5;
    cfg.error_model.mram_p10 = 5e-6;
    cfg
}

#[test]
fn injected_faults_are_thread_width_invariant() {
    // The core determinism contract extended to the error model: the fault
    // stream is keyed off (seed, region, block, exposure ordinal), never
    // off scheduling, so an N-thread grid reproduces the 1-thread grid
    // bit-for-bit — outputs, counters, and every fault statistic.
    let suite = all_benchmarks(BenchScale::Tiny);
    let designs = [DesignKind::Avr];
    for kind in BackendKind::ALL {
        let cfg = faulty_cfg(kind);
        let serial = run_grid(&SimPool::new(1), &suite, &cfg, &designs);
        let pooled = run_grid(&SimPool::new(4), &suite, &cfg, &designs);
        assert_eq!(serial.len(), pooled.len());
        let mut total_flips = 0;
        for (a, b) in serial.iter().zip(&pooled) {
            assert_eq!(a.workload, b.workload, "{kind:?}: grid order changed");
            let (ma, mb) = (&a.metrics, &b.metrics);
            let ctx = format!("{kind:?} {}", a.workload);
            assert_eq!(ma.cycles, mb.cycles, "{ctx}: cycles");
            assert_eq!(ma.counters.traffic, mb.counters.traffic, "{ctx}: traffic");
            assert_eq!(ma.counters.llc_misses_total, mb.counters.llc_misses_total, "{ctx}: LLC");
            assert_eq!(ma.counters.instructions, mb.counters.instructions, "{ctx}: instrs");
            assert_eq!(ma.counters.faults, mb.counters.faults, "{ctx}: fault counters");
            assert_eq!(ma.output_error.to_bits(), mb.output_error.to_bits(), "{ctx}: output error");
            assert_eq!(
                ma.compression_ratio.to_bits(),
                mb.compression_ratio.to_bits(),
                "{ctx}: compression"
            );
            total_flips += ma.counters.faults.injected_bit_flips;
        }
        match kind {
            BackendKind::Exact => {
                assert_eq!(total_flips, 0, "exact backend must never flip a bit")
            }
            _ => assert!(total_flips > 0, "{kind:?} at elevated rates must inject faults"),
        }
    }
}

#[test]
fn repeated_faulty_runs_are_bit_identical() {
    let cfg = faulty_cfg(BackendKind::RelaxedDram);
    let suite = all_benchmarks(BenchScale::Tiny);
    let w = suite.iter().find(|w| w.name() == "heat").unwrap();
    let a = run_on_design(w.as_ref(), &cfg, DesignKind::Avr);
    let b = run_on_design(w.as_ref(), &cfg, DesignKind::Avr);
    assert_eq!(a.counters.faults, b.counters.faults);
    assert_eq!(a.output_error.to_bits(), b.output_error.to_bits());
    assert_eq!(a.cycles, b.cycles);
    assert!(a.counters.faults.injected_bit_flips > 0);
}

#[test]
fn critical_only_designs_never_see_injected_faults() {
    // Baseline and ZeroAVR ignore the approx annotation, so every line is
    // critical — the error model must serve them exactly (scrubbing via
    // ECC instead of corrupting), whatever the backend and rates.
    let cfg = faulty_cfg(BackendKind::RelaxedDram);
    let suite = all_benchmarks(BenchScale::Tiny);
    let w = suite.iter().find(|w| w.name() == "heat").unwrap();
    for design in [DesignKind::Baseline, DesignKind::ZeroAvr] {
        let m = run_on_design(w.as_ref(), &cfg, design);
        assert_eq!(
            m.counters.faults.injected_bit_flips, 0,
            "{design:?} has no approximable lines to fault"
        );
        assert_eq!(m.counters.faults.degraded_lines, 0);
        assert!(m.counters.faults.ecc_scrubs > 0, "critical transfers must scrub");
    }
}

#[test]
fn seed_changes_the_fault_stream() {
    let suite = all_benchmarks(BenchScale::Tiny);
    let w = suite.iter().find(|w| w.name() == "heat").unwrap();
    let mut cfg = faulty_cfg(BackendKind::RelaxedDram);
    let a = run_on_design(w.as_ref(), &cfg, DesignKind::Avr);
    cfg.error_model.seed ^= 0xDEAD_BEEF;
    let b = run_on_design(w.as_ref(), &cfg, DesignKind::Avr);
    assert!(a.counters.faults.injected_bit_flips > 0);
    assert!(b.counters.faults.injected_bit_flips > 0);
    assert_ne!(
        (a.counters.faults.injected_bit_flips, a.output_error.to_bits()),
        (b.counters.faults.injected_bit_flips, b.output_error.to_bits()),
        "different seeds must not replay the identical fault stream"
    );
}

#[test]
fn layout_fault_scale_scales_the_per_region_fault_stream() {
    // The per-region override end-to-end: a layout's fault scale rides on
    // its approx regions' `RegionOpts` and multiplies the device fault
    // probability for those regions only — 0 silences them, > 1 amplifies
    // — while the RNG key chain is untouched, so each scale's run is
    // reproducible on its own.
    let cfg = faulty_cfg(BackendKind::RelaxedDram);
    let records = 1usize << 15;
    let run_with = |scale: f64| {
        let mut sys = System::new(cfg.clone(), DesignKind::Avr);
        let schema = RecordSchema::new(
            "rec",
            vec![FieldSpec::approx_f32("v"), FieldSpec::precise_f32("chk")],
        );
        let map = Layout::new(schema, LayoutKind::Partitioned)
            .with_fault_scale(scale)
            .instantiate(&mut sys, records);
        let data: Vec<f32> = (0..records).map(|i| 50.0 + (i % 97) as f32 * 0.01).collect();
        map.write_f32s(&mut sys, 0, 0, &data);
        map.write_f32s(&mut sys, 1, 0, &data);
        let mut back = vec![0f32; records];
        for _ in 0..4 {
            map.read_f32s(&mut sys, 0, 0, &mut back);
            map.read_f32s(&mut sys, 1, 0, &mut back);
        }
        sys.finish("fault-scale").counters.faults.injected_bit_flips
    };
    let silenced = run_with(0.0);
    let nominal = run_with(1.0);
    let amplified = run_with(16.0);
    assert_eq!(silenced, 0, "scale 0 must silence the region's faults");
    assert!(nominal > 0, "nominal rates must inject at this footprint");
    assert!(
        amplified > nominal,
        "scale 16 must inject more than nominal ({amplified} vs {nominal})"
    );
}

#[test]
fn hostile_fault_rate_exhausts_budget_but_stays_finite() {
    // Adversarial configuration: a retention failure rate four orders of
    // magnitude past plausible and a token retry budget. The run must
    // complete — flagged as degraded, output error finite — rather than
    // panic or emit NaN/Inf.
    let mut cfg = SystemConfig::tiny().with_backend(BackendKind::RelaxedDram);
    cfg.error_model.retention_fail_per_bit = 2e-2;
    cfg.error_model.retry_budget = 4;
    let suite = all_benchmarks(BenchScale::Tiny);
    let w = suite.iter().find(|w| w.name() == "heat").unwrap();
    let m = run_on_design(w.as_ref(), &cfg, DesignKind::Avr);
    let f = &m.counters.faults;
    assert!(f.injected_bit_flips > 0, "hostile rate must inject");
    assert!(f.retries <= 4, "retries cannot exceed the budget: {}", f.retries);
    assert!(f.degraded_lines > 0, "budget exhaustion must flag degradation");
    assert!(f.sanitized_values > 0, "degraded lines commit sanitized");
    assert!(m.output_error.is_finite(), "degraded runs stay finite");
    assert!(m.cycles > 0);
}
