//! End-to-end coverage of the fixed-point datatype path (paper §3.3,
//! footnote 1): AVR compresses Q16.16 data directly, without the
//! bias/convert stages, and the error check uses subtraction + comparison.

use avr::arch::{DesignKind, System, SystemConfig, Vm};
use avr::compress::{compress, Thresholds};
use avr::types::{BlockData, DataType, PhysAddr, VALUES_PER_BLOCK};

/// Q16.16 helpers.
fn to_q16(v: f64) -> u32 {
    ((v * 65536.0).round() as i32) as u32
}
fn from_q16(raw: u32) -> f64 {
    (raw as i32) as f64 / 65536.0
}

#[test]
fn fixed_point_blocks_compress_without_bias() {
    let mut b = BlockData::default();
    for (i, w) in b.words.iter_mut().enumerate() {
        *w = to_q16(500.0 + i as f64 * 0.25);
    }
    let o = compress(&b, DataType::Fixed32, &Thresholds::paper_default(), 8).unwrap();
    assert_eq!(o.compressed.bias, 0, "fixed data never biases");
    assert!(o.compressed.size_lines() <= 2);
    for i in 0..VALUES_PER_BLOCK {
        let orig = from_q16(b.words[i]);
        let rec = from_q16(o.reconstructed.words[i]);
        assert!(((rec - orig) / orig).abs() < 0.02 + 1e-9, "value {i}: {orig} vs {rec}");
    }
}

#[test]
fn fixed_point_region_survives_a_full_system_round_trip() {
    let mut sys = System::new(SystemConfig::tiny(), DesignKind::Avr);
    let n = 32 * 1024usize;
    let r = sys.approx_malloc(4 * n, DataType::Fixed32);

    // A smooth sensor-style Q16.16 signal, stored through the i32 bulk
    // alias (the Fixed32 consumers' natural type).
    let signal: Vec<i32> = (0..n).map(|i| to_q16(1000.0 + (i as f64) * 0.01) as i32).collect();
    sys.write_i32s(r.base, &signal);
    // Flush the hierarchy so blocks compress on eviction.
    let scratch = sys.malloc(256 << 10);
    for off in (0..256 << 10).step_by(64) {
        sys.read_u32(PhysAddr(scratch.base.0 + off as u64));
    }
    // Read back in bulk: values within T1 of the originals.
    let mut back = vec![0i32; n];
    sys.read_i32s(r.base, &mut back);
    let mut worst = 0.0f64;
    for (i, &raw) in back.iter().enumerate() {
        let expect = 1000.0 + (i as f64) * 0.01;
        let got = from_q16(raw as u32);
        worst = worst.max(((got - expect) / expect).abs());
    }
    assert!(worst <= 0.02 + 1e-6, "worst fixed-point error {worst}");

    let m = sys.finish("fixed_round_trip");
    assert!(
        m.compression_ratio > 4.0,
        "smooth fixed ramp should compress well: {}",
        m.compression_ratio
    );
}

#[test]
fn mixed_datatype_regions_coexist() {
    // One system, one f32 region and one Q16.16 region: the CMT method
    // field keeps their codecs apart.
    let mut sys = System::new(SystemConfig::tiny(), DesignKind::Avr);
    let nf = 8 * 1024usize;
    let rf = sys.approx_malloc(4 * nf, DataType::F32);
    let rq = sys.approx_malloc(4 * nf, DataType::Fixed32);
    for i in 0..nf as u64 {
        sys.write_f32(PhysAddr(rf.base.0 + 4 * i), 3.0 + i as f32 * 1e-3);
        sys.write_u32(PhysAddr(rq.base.0 + 4 * i), to_q16(3.0 + i as f64 * 1e-3));
    }
    let scratch = sys.malloc(256 << 10);
    for off in (0..256 << 10).step_by(64) {
        sys.read_u32(PhysAddr(scratch.base.0 + off as u64));
    }
    for i in (0..nf as u64).step_by(97) {
        let expect = 3.0 + i as f64 * 1e-3;
        let f = sys.read_f32(PhysAddr(rf.base.0 + 4 * i)) as f64;
        let q = from_q16(sys.read_u32(PhysAddr(rq.base.0 + 4 * i)));
        assert!(((f - expect) / expect).abs() < 0.02 + 1e-6, "f32 {i}: {f}");
        assert!(((q - expect) / expect).abs() < 0.02 + 1e-6, "q16 {i}: {q}");
    }
}
