//! Property-based tests of the cache structures: the decoupled LLC never
//! corrupts its tag/BPA invariants under arbitrary operation sequences,
//! and the conventional cache behaves like a reference model.

use avr::cache::llc::AvrLlc;
use avr::cache::set_assoc::SetAssocCache;
use avr::types::{BlockAddr, CacheGeometry, LineAddr};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum LlcOp {
    InsertUcl { block: u8, cl: u8, dirty: bool },
    InsertCms { block: u8, size: u8, dirty: bool },
    AccessUcl { block: u8, cl: u8 },
    RemoveCms { block: u8 },
    InvalidateUcl { block: u8, cl: u8 },
    EvictBlock { block: u8 },
}

fn llc_op() -> impl Strategy<Value = LlcOp> {
    prop_oneof![
        (any::<u8>(), 0u8..16, any::<bool>())
            .prop_map(|(block, cl, dirty)| LlcOp::InsertUcl { block, cl, dirty }),
        (any::<u8>(), 1u8..=8, any::<bool>())
            .prop_map(|(block, size, dirty)| LlcOp::InsertCms { block, size, dirty }),
        (any::<u8>(), 0u8..16).prop_map(|(block, cl)| LlcOp::AccessUcl { block, cl }),
        any::<u8>().prop_map(|block| LlcOp::RemoveCms { block }),
        (any::<u8>(), 0u8..16).prop_map(|(block, cl)| LlcOp::InvalidateUcl { block, cl }),
        any::<u8>().prop_map(|block| LlcOp::EvictBlock { block }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The decoupled LLC's internal invariants hold under arbitrary
    /// operation sequences (tag counts match BPA contents, no orphans).
    #[test]
    fn decoupled_llc_invariants_hold(ops in proptest::collection::vec(llc_op(), 1..300)) {
        let mut llc = AvrLlc::new(CacheGeometry { capacity: 64 * 4 * 64, ways: 4, latency: 15 });
        for op in ops {
            match op {
                LlcOp::InsertUcl { block, cl, dirty } => {
                    llc.insert_ucl(BlockAddr(block as u64).line(cl as usize), dirty);
                }
                LlcOp::InsertCms { block, size, dirty } => {
                    llc.insert_cms(BlockAddr(block as u64), size, dirty);
                }
                LlcOp::AccessUcl { block, cl } => {
                    llc.access_ucl(BlockAddr(block as u64).line(cl as usize), false);
                }
                LlcOp::RemoveCms { block } => {
                    llc.remove_cms(BlockAddr(block as u64));
                }
                LlcOp::InvalidateUcl { block, cl } => {
                    llc.invalidate_ucl(BlockAddr(block as u64).line(cl as usize));
                }
                LlcOp::EvictBlock { block } => {
                    llc.evict_block(BlockAddr(block as u64));
                }
            }
            llc.check_invariants();
        }
    }

    /// A dirty line inserted into the LLC is either still resident or was
    /// reported dirty in an eviction — dirtiness never silently vanishes.
    #[test]
    fn dirty_lines_are_never_lost(
        lines in proptest::collection::vec((any::<u8>(), 0u8..16), 1..200)
    ) {
        let mut llc = AvrLlc::new(CacheGeometry { capacity: 32 * 4 * 64, ways: 4, latency: 15 });
        let mut written_back = std::collections::HashSet::new();
        let mut inserted = std::collections::HashSet::new();
        for (block, cl) in lines {
            let line = BlockAddr(block as u64).line(cl as usize);
            for ev in llc.insert_ucl(line, true) {
                if let avr::cache::llc::Evicted::Ucl { line: l, dirty: true } = ev {
                    written_back.insert(l);
                }
            }
            inserted.insert(line);
        }
        for line in &inserted {
            let resident_dirty = llc.ucl_dirty(*line) == Some(true);
            prop_assert!(
                resident_dirty || written_back.contains(line),
                "dirty line {line:?} vanished without a writeback"
            );
        }
    }

    /// The conventional cache agrees with a trivial reference model on
    /// presence after arbitrary access/insert interleavings.
    #[test]
    fn set_assoc_matches_reference(
        accesses in proptest::collection::vec((0u64..256, any::<bool>()), 1..300)
    ) {
        let geom = CacheGeometry { capacity: 16 * 2 * 64, ways: 2, latency: 1 };
        let mut cache = SetAssocCache::new(geom);
        // Reference: per-set LRU lists.
        let sets = 16usize;
        let ways = 2usize;
        let mut reference: HashMap<usize, Vec<u64>> = HashMap::new();
        for (line, write) in accesses {
            let set = (line as usize) % sets;
            let lru = reference.entry(set).or_default();
            let hit_ref = lru.contains(&line);
            let hit = cache.access(LineAddr(line), write);
            prop_assert_eq!(hit, hit_ref, "presence diverged on line {}", line);
            if hit_ref {
                lru.retain(|&l| l != line);
                lru.push(line);
            } else {
                cache.insert(LineAddr(line), write);
                if lru.len() == ways {
                    lru.remove(0);
                }
                lru.push(line);
            }
        }
    }
}
