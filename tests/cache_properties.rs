//! Property-based tests of the cache structures: the decoupled LLC never
//! corrupts its tag/BPA invariants under arbitrary operation sequences,
//! and the conventional cache behaves like a reference model. Random
//! sequences come from a deterministic splitmix64 stream (the build
//! environment is offline, so no proptest).

use avr::cache::llc::AvrLlc;
use avr::cache::set_assoc::SetAssocCache;
use avr::types::{BlockAddr, CacheGeometry, LineAddr};
use std::collections::HashMap;

mod common;
use common::Rng;

#[derive(Clone, Debug)]
enum LlcOp {
    InsertUcl { block: u8, cl: u8, dirty: bool },
    InsertCms { block: u8, size: u8, dirty: bool },
    AccessUcl { block: u8, cl: u8 },
    RemoveCms { block: u8 },
    InvalidateUcl { block: u8, cl: u8 },
    EvictBlock { block: u8 },
}

fn llc_op(rng: &mut Rng) -> LlcOp {
    let block = rng.below(256) as u8;
    match rng.below(6) {
        0 => LlcOp::InsertUcl { block, cl: rng.below(16) as u8, dirty: rng.flip() },
        1 => LlcOp::InsertCms { block, size: 1 + rng.below(8) as u8, dirty: rng.flip() },
        2 => LlcOp::AccessUcl { block, cl: rng.below(16) as u8 },
        3 => LlcOp::RemoveCms { block },
        4 => LlcOp::InvalidateUcl { block, cl: rng.below(16) as u8 },
        _ => LlcOp::EvictBlock { block },
    }
}

/// The decoupled LLC's internal invariants hold under arbitrary operation
/// sequences (tag counts match BPA contents, no orphans).
#[test]
fn decoupled_llc_invariants_hold() {
    for case in 0..64u64 {
        let mut rng = Rng(0xcace_0001 ^ case);
        let mut llc = AvrLlc::new(CacheGeometry { capacity: 64 * 4 * 64, ways: 4, latency: 15 });
        let ops = 1 + rng.below(300);
        for step in 0..ops {
            let op = llc_op(&mut rng);
            match &op {
                LlcOp::InsertUcl { block, cl, dirty } => {
                    llc.insert_ucl(BlockAddr(*block as u64).line(*cl as usize), *dirty);
                }
                LlcOp::InsertCms { block, size, dirty } => {
                    llc.insert_cms(BlockAddr(*block as u64), *size, *dirty);
                }
                LlcOp::AccessUcl { block, cl } => {
                    llc.access_ucl(BlockAddr(*block as u64).line(*cl as usize), false);
                }
                LlcOp::RemoveCms { block } => {
                    llc.remove_cms(BlockAddr(*block as u64));
                }
                LlcOp::InvalidateUcl { block, cl } => {
                    llc.invalidate_ucl(BlockAddr(*block as u64).line(*cl as usize));
                }
                LlcOp::EvictBlock { block } => {
                    llc.evict_block(BlockAddr(*block as u64));
                }
            }
            llc.check_invariants();
            let _ = (case, step, op);
        }
    }
}

/// A dirty line inserted into the LLC is either still resident or was
/// reported dirty in an eviction — dirtiness never silently vanishes.
#[test]
fn dirty_lines_are_never_lost() {
    for case in 0..64u64 {
        let mut rng = Rng(0xcace_0002 ^ case);
        let mut llc = AvrLlc::new(CacheGeometry { capacity: 32 * 4 * 64, ways: 4, latency: 15 });
        let mut written_back = std::collections::HashSet::new();
        let mut inserted = std::collections::HashSet::new();
        let n = 1 + rng.below(200);
        for _ in 0..n {
            let block = rng.below(256);
            let cl = rng.below(16) as usize;
            let line = BlockAddr(block).line(cl);
            for ev in llc.insert_ucl(line, true) {
                if let avr::cache::llc::Evicted::Ucl { line: l, dirty: true } = ev {
                    written_back.insert(l);
                }
            }
            inserted.insert(line);
        }
        for line in &inserted {
            let resident_dirty = llc.ucl_dirty(*line) == Some(true);
            assert!(
                resident_dirty || written_back.contains(line),
                "case {case}: dirty line {line:?} vanished without a writeback"
            );
        }
    }
}

/// The conventional cache agrees with a trivial reference model on
/// presence after arbitrary access/insert interleavings.
#[test]
fn set_assoc_matches_reference() {
    for case in 0..64u64 {
        let mut rng = Rng(0xcace_0003 ^ case);
        let geom = CacheGeometry { capacity: 16 * 2 * 64, ways: 2, latency: 1 };
        let mut cache = SetAssocCache::new(geom);
        // Reference: per-set LRU lists.
        let sets = 16usize;
        let ways = 2usize;
        let mut reference: HashMap<usize, Vec<u64>> = HashMap::new();
        let n = 1 + rng.below(300);
        for _ in 0..n {
            let line = rng.below(256);
            let write = rng.flip();
            let set = (line as usize) % sets;
            let lru = reference.entry(set).or_default();
            let hit_ref = lru.contains(&line);
            let hit = cache.access(LineAddr(line), write);
            assert_eq!(hit, hit_ref, "case {case}: presence diverged on line {line}");
            if hit_ref {
                lru.retain(|&l| l != line);
                lru.push(line);
            } else {
                cache.insert(LineAddr(line), write);
                if lru.len() == ways {
                    lru.remove(0);
                }
                lru.push(line);
            }
        }
    }
}
