//! The parallel engine's scheduling contracts: weighted (heaviest-first)
//! claiming is result-invariant, chunked claiming covers every job exactly
//! once at the integration level, and — on a host that actually has ≥ 2
//! hardware threads — pooling a real grid is not slower than running it
//! serially. The bit-identity of pooled vs. serial *simulation results*
//! is pinned by `tests/determinism.rs`; this file covers the scheduler
//! itself plus the wall-clock smoke.

use avr::arch::{DesignKind, SimPool, SystemConfig};
use avr::workloads::{all_benchmarks, run_grid, BenchScale, Workload};
use std::time::Instant;

#[test]
fn weighted_grid_matches_serial_grid_bit_for_bit_at_any_width() {
    // run_grid claims heaviest-first via cost_hint; the schedule is a
    // permutation of the claiming order only — results must come back in
    // workload-major grid order with identical metrics at every width.
    let cfg = SystemConfig::tiny();
    let suite: Vec<Box<dyn Workload>> = all_benchmarks(BenchScale::Tiny)
        .into_iter()
        .filter(|w| matches!(w.name(), "heat" | "orbit" | "kmeans" | "bscholes"))
        .collect();
    let designs = [DesignKind::Baseline, DesignKind::Avr, DesignKind::Truncate];
    let serial = run_grid(&SimPool::new(1), &suite, &cfg, &designs);
    for threads in [2, 3, 8] {
        let pooled = run_grid(&SimPool::new(threads), &suite, &cfg, &designs);
        assert_eq!(pooled.len(), serial.len());
        for (a, b) in serial.iter().zip(&pooled) {
            assert_eq!((a.workload, a.design), (b.workload, b.design), "{threads}T reordered");
            assert_eq!(a.metrics.cycles, b.metrics.cycles, "{}: cycles", a.workload);
            assert_eq!(a.metrics.counters.traffic, b.metrics.counters.traffic);
            assert_eq!(
                a.metrics.output_error.to_bits(),
                b.metrics.output_error.to_bits(),
                "{}: output error differs at {threads} threads",
                a.workload
            );
        }
    }
}

#[test]
fn weighted_claiming_is_an_exact_permutation_on_large_batches() {
    // Integration-level chunked/weighted claiming check: every index runs
    // exactly once and lands in its own slot, across widths and weight
    // shapes (uniform → chunked path; skewed → LPT path).
    for threads in [1, 4, 13] {
        let pool = SimPool::new(threads);
        let n = 4097; // off power-of-two: exercises the final short chunk
        let uniform = pool.run_jobs(n, |ctx| ctx.index as u64 * 3 + 1);
        let skewed = pool.run_jobs_weighted(
            n,
            |i| (i as u64 * 2_654_435_761) % 1000,
            |ctx| ctx.index as u64 * 3 + 1,
        );
        assert_eq!(uniform, skewed, "{threads}T: weighted schedule changed results");
        for (i, v) in uniform.iter().enumerate() {
            assert_eq!(*v, i as u64 * 3 + 1, "{threads}T: job {i} mis-slotted");
        }
    }
}

#[test]
fn pooled_sweep_is_not_slower_than_serial_on_a_multicore_host() {
    // The PR-7 smoke: on a host with ≥ 2 hardware threads, running the
    // nine-workload AVR sweep on a matching-width pool must not lose to
    // the serial walk. This is a smoke, not a perf gate (bench_e2e
    // --check owns the gate): the 15 % tolerance absorbs a busy runner,
    // and 1-hardware-thread hosts skip — four workers time-slicing one
    // core measures the OS scheduler, which is exactly the ambiguity the
    // recorded host-width provenance exists to prevent (PERFORMANCE.md).
    let width = std::thread::available_parallelism().map_or(1, |n| n.get());
    if width < 2 {
        eprintln!("skipping pooled-not-slower smoke: 1 hardware thread");
        return;
    }
    let cfg = SystemConfig::tiny();
    let suite = all_benchmarks(BenchScale::Tiny);
    let designs = [DesignKind::Avr];
    // Warm the golden cache so neither side pays it (and neither side
    // races its computation).
    let _ = run_grid(&SimPool::new(1), &suite, &cfg, &designs);

    let time_grid = |pool: &SimPool| {
        let mut best = f64::MAX;
        for _ in 0..2 {
            let t0 = Instant::now();
            let grid = run_grid(pool, &suite, &cfg, &designs);
            best = best.min(t0.elapsed().as_secs_f64());
            assert_eq!(grid.len(), suite.len());
        }
        best
    };
    let serial = time_grid(&SimPool::new(1));
    let pooled = time_grid(&SimPool::new(width.min(4)));
    assert!(
        pooled <= serial * 1.15,
        "pooled sweep slower than serial on a {width}-thread host: {:.1} ms vs {:.1} ms",
        pooled * 1e3,
        serial * 1e3,
    );
}
