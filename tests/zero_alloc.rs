//! Allocation regression test: the steady-state compress + LLC access
//! paths must perform **zero heap allocations** after warm-up. A counting
//! global allocator wraps the system allocator; everything runs inside one
//! test function so no concurrent test pollutes the counter.
//!
//! Only threads that opt in (the test thread and the summary workers it
//! spawns) are counted: the allocator is process-global, and libtest's own
//! runner thread does a couple of bookkeeping allocations concurrently
//! with the first milliseconds of the test body — on a loaded single-core
//! host those used to land inside the measured window and fail the test
//! spuriously.

use avr::arch::{DesignKind, System as AvrSystem, SystemConfig, Vm};
use avr::cache::cmt::{CmtCache, CmtTable};
use avr::cache::llc::AvrLlc;
use avr::compress::{Compressor, Thresholds};
use avr::types::{BlockAddr, BlockData, CacheGeometry, DataType, PhysAddr};
use avr_bench::codec_kernels::{noise_block, smooth_block, spiky_block};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // const-init + no destructor: accessing this inside the allocator
    // cannot itself allocate or register TLS teardown.
    static COUNTED: Cell<bool> = const { Cell::new(false) };
}

/// Opt the current thread into allocation counting.
fn count_this_thread() {
    COUNTED.with(|c| c.set(true));
}

#[inline]
fn counted() -> bool {
    COUNTED.try_with(|c| c.get()).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counted() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counted() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_hot_paths_do_not_allocate() {
    count_this_thread();

    // ------------------------------------------------------------------
    // Codec: success, outlier and failure paths.
    // ------------------------------------------------------------------
    let mut comp = Compressor::new(Thresholds::paper_default(), 8);
    let (smooth, spiky, noise) = (smooth_block(), spiky_block(), noise_block());
    let mut fixed = BlockData::default();
    for (i, w) in fixed.words.iter_mut().enumerate() {
        *w = ((100 << 16) + (i as i32) * 300) as u32;
    }
    // Warm-up covers every branch once.
    let _ = comp.compress(&smooth, DataType::F32);
    let _ = comp.compress(&spiky, DataType::F32);
    let _ = comp.compress(&noise, DataType::F32);
    let _ = comp.compress(&fixed, DataType::Fixed32);

    let before = allocations();
    for _ in 0..200 {
        assert!(comp.compress(&smooth, DataType::F32).is_ok());
        assert!(comp.compress(&spiky, DataType::F32).is_ok());
        assert!(comp.compress(&noise, DataType::F32).is_err());
        assert!(comp.compress(&fixed, DataType::Fixed32).is_ok());
    }
    let codec_allocs = allocations() - before;
    assert_eq!(codec_allocs, 0, "steady-state compress allocated {codec_allocs} times");

    // ------------------------------------------------------------------
    // Decoupled LLC: hits, inserts, evictions, mask queries.
    // ------------------------------------------------------------------
    let mut llc = AvrLlc::new(CacheGeometry { capacity: 64 * 4 * 64, ways: 4, latency: 15 });
    let exercise = |llc: &mut AvrLlc| {
        for k in 0..96u64 {
            let b = BlockAddr(k * 3);
            let _ = llc.insert_ucl(b.line((k % 16) as usize), k % 2 == 0);
            let _ = llc.insert_cms(BlockAddr(k), 1 + (k % 8) as u8, k % 3 == 0);
            llc.access_ucl(b.line((k % 16) as usize), false);
            let _ = llc.ucls_of(b);
            let _ = llc.dirty_ucls_of(b);
            if k % 7 == 0 {
                let _ = llc.evict_block(BlockAddr(k / 2));
            }
            if k % 5 == 0 {
                let _ = llc.remove_cms(BlockAddr(k));
            }
        }
    };
    exercise(&mut llc); // warm
    let before = allocations();
    for _ in 0..50 {
        exercise(&mut llc);
    }
    let llc_allocs = allocations() - before;
    assert_eq!(llc_allocs, 0, "steady-state LLC ops allocated {llc_allocs} times");

    // ------------------------------------------------------------------
    // CMT table + cache on a warmed block set.
    // ------------------------------------------------------------------
    let mut cmt = CmtTable::default();
    let mut cache = CmtCache::new(16);
    for k in 0..128u64 {
        cmt.get_mut(BlockAddr(k * 37)).n_lazy = (k % 8) as u8; // materialize segments
        cache.touch(BlockAddr(k * 37));
    }
    let before = allocations();
    for _ in 0..50 {
        for k in 0..128u64 {
            let e = cmt.get(BlockAddr(k * 37));
            cmt.get_mut(BlockAddr(k * 37)).n_failed = e.n_lazy;
            cache.touch(BlockAddr(k * 37));
        }
    }
    let cmt_allocs = allocations() - before;
    assert_eq!(cmt_allocs, 0, "steady-state CMT ops allocated {cmt_allocs} times");

    // ------------------------------------------------------------------
    // Full system: an AVR design re-running identical approx traffic.
    // ------------------------------------------------------------------
    let mut sys = AvrSystem::new(SystemConfig::tiny(), DesignKind::Avr);
    let region = sys.approx_malloc(64 << 10, DataType::F32);
    let flush = sys.malloc(1 << 18);
    let pass = |sys: &mut AvrSystem, seed: f32| {
        for i in 0..(64 << 10) / 4_u64 {
            sys.write_f32(PhysAddr(region.base.0 + 4 * i), seed + (i as f32) * 0.001);
        }
        for off in (0..1 << 18).step_by(64) {
            sys.read_u32(PhysAddr(flush.base.0 + off as u64));
        }
        for i in (0..(64 << 10) / 4_u64).step_by(16) {
            sys.read_f32(PhysAddr(region.base.0 + 4 * i));
        }
    };
    pass(&mut sys, 100.0); // warm-up: allocates backing pages, CMT segments…
    pass(&mut sys, 101.0);
    let before = allocations();
    pass(&mut sys, 102.0);
    let system_allocs = allocations() - before;
    assert_eq!(
        system_allocs, 0,
        "steady-state full-system AVR traffic allocated {system_allocs} times"
    );

    // ------------------------------------------------------------------
    // Bulk Vm API: the System fast paths (contiguous, strided, gather/
    // scatter, fused sweep) must not allocate in steady state either —
    // they coalesce into stack buffers and the existing access machinery.
    // ------------------------------------------------------------------
    let mut vals = vec![0f32; 4096];
    let mut back = vec![0f32; 4096];
    let mut col = vec![0f32; 256];
    let idx: Vec<u32> = (0..256u32).map(|i| (i * 131) % 4096).collect();
    let mut gathered = vec![0f32; 256];
    let bulk_pass = |sys: &mut AvrSystem,
                     vals: &mut [f32],
                     back: &mut [f32],
                     col: &mut [f32],
                     gathered: &mut [f32],
                     seed: f32| {
        for (k, v) in vals.iter_mut().enumerate() {
            *v = seed + k as f32 * 0.01;
        }
        sys.write_f32s(PhysAddr(region.base.0 + 8), vals);
        sys.read_f32s(PhysAddr(region.base.0 + 8), back);
        sys.read_f32s_strided(region.base, 256, col);
        sys.write_f32s_strided(region.base, 256, col);
        sys.write_f32s_scatter(region.base, &idx, &vals[..256]);
        sys.read_f32s_gather(region.base, &idx, gathered);
        sys.for_each_f32_mut(PhysAddr(region.base.0 + 1024), 2048, 2, &mut |k, v| {
            v + (k % 3) as f32
        });
        for off in (0..1 << 18).step_by(64) {
            sys.read_u32(PhysAddr(flush.base.0 + off as u64));
        }
    };
    bulk_pass(&mut sys, &mut vals, &mut back, &mut col, &mut gathered, 300.0); // warm
    bulk_pass(&mut sys, &mut vals, &mut back, &mut col, &mut gathered, 301.0);
    let before = allocations();
    bulk_pass(&mut sys, &mut vals, &mut back, &mut col, &mut gathered, 302.0);
    let bulk_allocs = allocations() - before;
    assert_eq!(bulk_allocs, 0, "steady-state bulk-API traffic allocated {bulk_allocs} times");

    // ------------------------------------------------------------------
    // Memoization designs: MemoIn's fingerprint table is pre-sized at
    // construction (slot seeding pushes into reserved capacity) and
    // MemoOut's per-line window/shadow state is sized at region creation,
    // so repeated memo traffic — probes, table serves, window updates,
    // elisions — performs zero steady-state allocations.
    // ------------------------------------------------------------------
    for design in [DesignKind::MemoIn, DesignKind::MemoOut] {
        let mut msys = AvrSystem::new(SystemConfig::tiny(), design);
        let mregion = msys.approx_malloc(64 << 10, DataType::F32);
        let mflush = msys.malloc(1 << 18);
        let memo_pass = |msys: &mut AvrSystem, seed: f32| {
            for i in 0..(64 << 10) / 4_u64 {
                msys.write_f32(PhysAddr(mregion.base.0 + 4 * i), seed + (i as f32) * 0.001);
            }
            for off in (0..1 << 18).step_by(64) {
                msys.read_u32(PhysAddr(mflush.base.0 + off as u64));
            }
            for i in (0..(64 << 10) / 4_u64).step_by(16) {
                msys.read_f32(PhysAddr(mregion.base.0 + 4 * i));
            }
        };
        // Warm-up materializes pages and fills the memo table / windows;
        // the repeated identical pass then exercises matches and elisions.
        memo_pass(&mut msys, 200.0);
        memo_pass(&mut msys, 200.0);
        let before = allocations();
        memo_pass(&mut msys, 200.0);
        let memo_allocs = allocations() - before;
        assert_eq!(
            memo_allocs, 0,
            "steady-state {design:?} memo traffic allocated {memo_allocs} times"
        );
        let memo = msys.counters.memo;
        assert!(
            memo.in_probes + memo.out_windows > 0,
            "{design:?} saw no memo activity — the section measured nothing"
        );
    }

    // ------------------------------------------------------------------
    // Parallel compression summary: each worker's block-scan loop reuses
    // its own Compressor scratch, so once all workers are warmed the whole
    // pool performs zero allocations while scanning. Barriers carve out a
    // measurement window in which *only* the workers' steady-state loops
    // run, making the global counter a per-worker-sum-of-zeros check.
    // ------------------------------------------------------------------
    let blocks: Vec<_> = sys.space.approx_blocks().collect();
    assert!(blocks.len() >= 32, "need a real block population, got {}", blocks.len());
    let mem = &sys.mem;
    const WORKERS: usize = 4;
    let warmed = std::sync::Barrier::new(WORKERS + 1);
    let start = std::sync::Barrier::new(WORKERS + 1);
    let stop = std::sync::Barrier::new(WORKERS + 1);
    // Holds workers alive (parked, not exiting) until the counter is read,
    // so thread-teardown machinery can't leak into the window.
    let exit_gate = std::sync::Barrier::new(WORKERS + 1);
    let chunk = blocks.len().div_ceil(WORKERS);
    let mut totals = avr::arch::summary::BlockScan::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = blocks
            .chunks(chunk)
            .map(|share| {
                let (warmed, start, stop, exit_gate) = (&warmed, &start, &stop, &exit_gate);
                scope.spawn(move || {
                    count_this_thread();
                    // Worker setup: the compressor (and its scratch) is the
                    // only allocation; one warm scan touches every branch.
                    let mut comp = Compressor::new(Thresholds::paper_default(), 8);
                    let warm = avr::arch::summary::scan_blocks(&mut comp, mem, share);
                    warmed.wait();
                    start.wait();
                    let mut acc = avr::arch::summary::BlockScan::default();
                    for _ in 0..20 {
                        let got = avr::arch::summary::scan_blocks(&mut comp, mem, share);
                        assert_eq!(got, warm, "scan must be repeatable");
                        acc = got;
                    }
                    stop.wait();
                    exit_gate.wait();
                    acc
                })
            })
            .collect();
        warmed.wait();
        let before = allocations();
        start.wait(); // release every warmed worker into its steady loop
        stop.wait(); // all loops done; nothing else ran in the window
        let summary_allocs = allocations() - before;
        exit_gate.wait();
        assert_eq!(
            summary_allocs, 0,
            "steady-state parallel compression_summary allocated {summary_allocs} times"
        );
        for h in handles {
            totals.merge(h.join().unwrap());
        }
    });
    // The sharded totals must equal the engine's own parallel scan.
    let th = Thresholds::paper_default();
    assert_eq!(avr::arch::summary::parallel_summary(mem, &blocks, th, 8, WORKERS), totals);
}
